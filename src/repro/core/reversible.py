"""Reversible sessions: checkpointed choices, rollback, and the
reversible compliance relation.

The ordinary compliance relation (Definition 4 / Theorem 1) treats every
synchronisation as irrevocable: a client that commits to a branch whose
continuation gets stuck is stuck for good, so Definition 5 demands the
full ready-set inclusion in *every* reachable pair.  Following
*Compliance for reversible client/server interactions* (PAPERS.md), this
module relaxes commitment: a choice is **checkpointed** when taken, and
a stuck continuation may **roll back** to the last checkpoint that still
has an untried alternative.  Two layers implement that idea:

* :class:`ReversibleSession` — the operational semantics.  A forward
  synchronisation at a state with several enabled labels pushes a
  :class:`SessionCheckpoint` (the pair, the untried alternatives, the
  trace length); :meth:`ReversibleSession.rollback` pops to the nearest
  checkpoint with untried alternatives and restricts the next choice to
  them.  The recorded trace is *rewound to a prefix* on rollback — the
  invariant the resilience layer inherits: histories remain valid
  prefixes across rewinds.

* :func:`check_reversible` — the reversible compliance decider.  A pair
  is **reversibly compliant** when the client has a rollback-backed
  strategy to reach termination however the other side resolves its
  nondeterminism.  Formally it is the complement of a *doom* least
  fixpoint over the synchronisation pair graph (the lfp framing of
  *A Note On Compliance Relations And Fixed Points*, PAPERS.md):

      doomed ::= lfp D. { p | client(p) ≠ ε ∧
                              ∀ℓ ∈ syncs(p) ∃ p' ∈ succs(p, ℓ): p' ∈ D }

  The system (client + rollback) picks the synchronisation label — an
  untried branch is always recoverable, so the choice is angelic — while
  the adversary resolves which successor pair a label lands in; a pair
  with no synchronisations and a non-terminated client is doomed
  vacuously (nothing left to retract into).  ``H1 ⊢ H2`` in the ordinary
  sense implies reversible compliance (every reachable pair offers a
  matched action, so by induction no lfp stage can claim the initial
  pair); the property suite checks that implication on random contracts.

On failure the decider returns a **replayable witness**: the adversary's
strategy — for every doomed pair, one doomed successor per enabled
label, with strictly decreasing lfp rank — plus one demonic play.
:meth:`ReversibleWitness.replays` re-derives the synchronisation moves
and verifies genuine successorship and rank decrease, so a reported
"rollback cannot restore compliance" verdict carries its own proof.

Both the interpreted decider and its compiled twin
(:mod:`repro.compiled.reversible`) produce identical verdicts, ranks,
strategies and plays; ``check_reversible(engine=...)`` selects between
them and ``check_compliance(..., engine="reversible")`` exposes the
relation beside ``onthefly``/``eager``/``gfp``/``compiled``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.contracts.contract import (Contract, register_cache_clearer,
                                      register_cache_stat_names)
from repro.contracts.lts import DEFAULT_STATE_LIMIT, LTS
from repro.contracts.product import PairState
from repro.core.actions import co, is_input, is_output
from repro.core.errors import StateSpaceLimitError
from repro.core.semantics import is_terminated
from repro.core.syntax import HistoryExpression
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import (cache_stats, reset_cache_stats,
                                             track_cache)

#: Entries kept in the decider memos (same trade-off as the contract
#: caches they sit beside).
REVERSIBLE_CACHE_SIZE = 1024


def sync_moves(client_lts: LTS, server_lts: LTS, pair: PairState
               ) -> dict[object, tuple[PairState, ...]]:
    """The synchronisation moves out of *pair*, grouped by the client's
    label: ``label -> successor pairs``, labels and successors in
    canonical (repr-sorted) order.

    Both directions are covered because every synchronisation appears
    once as the client's output and once as the client's input; the
    grouping is what distinguishes the reversible relation — the system
    chooses the *label*, the adversary the successor pair.
    """
    h1, h2 = pair
    moves: dict[object, tuple[PairState, ...]] = {}
    for label in client_lts.labels_from(h1):
        if not (is_output(label) or is_input(label)):
            continue
        partner = co(label)
        successors = tuple(sorted(
            ((h1_next, h2_next)
             for h1_next in client_lts.successors(h1, label)
             for h2_next in server_lts.successors(h2, partner)),
            key=repr))
        if successors:
            moves[label] = successors
    return dict(sorted(moves.items(), key=lambda item: repr(item[0])))


# -- the operational layer ---------------------------------------------------

@dataclass(frozen=True)
class SessionCheckpoint:
    """One checkpointed choice: the pair it was taken at, the labels not
    yet tried, and the trace length to rewind to."""

    pair: PairState
    untried: tuple[object, ...]
    depth: int


class ReversibleSession:
    """Checkpointed forward synchronisation with rollback, over one
    client/server contract pair.

    The session keeps a **checkpoint stack**: a synchronisation taken at
    a state with two or more enabled labels pushes the state and its
    untried alternatives.  When the session is stuck, :meth:`rollback`
    pops to the nearest checkpoint with an untried alternative and
    restricts the next choice to exactly those labels — so one branch is
    never retried twice from the same checkpoint, and the stack shrinks
    monotonically across rollbacks at the same state.  The recorded
    ``trace`` is truncated to the checkpoint's prefix on every rewind.
    """

    def __init__(self, client: HistoryExpression | Contract,
                 server: HistoryExpression | Contract) -> None:
        client_c = client if isinstance(client, Contract) else \
            Contract(client)
        server_c = server if isinstance(server, Contract) else \
            Contract(server)
        self._client_lts = client_c.lts
        self._server_lts = server_c.lts
        self.pair: PairState = (client_c.term, server_c.term)
        #: When not ``None``: the labels the next choice is restricted
        #: to (the untried alternatives of the restored checkpoint).
        self.allowed: frozenset | None = None
        self.stack: list[SessionCheckpoint] = []
        self.trace: list[PairState] = [self.pair]
        self.rollbacks = 0

    def is_complete(self) -> bool:
        """Has the client terminated?  (The asymmetric success condition
        of Definition 4: the client may walk away mid-server.)"""
        return is_terminated(self.pair[0])

    def enabled(self) -> tuple[object, ...]:
        """The labels the session may synchronise on next, in canonical
        order, honouring a post-rollback restriction."""
        labels = tuple(sync_moves(self._client_lts, self._server_lts,
                                  self.pair))
        if self.allowed is None:
            return labels
        return tuple(label for label in labels if label in self.allowed)

    def sync(self, label) -> PairState:
        """Take one synchronisation on *label*, checkpointing the choice
        when alternatives remain (the canonical least successor resolves
        the adversary's nondeterminism deterministically)."""
        moves = sync_moves(self._client_lts, self._server_lts, self.pair)
        alternatives = self.enabled()
        if label not in alternatives:
            raise ValueError(f"label {label!r} is not enabled "
                             f"(enabled: {alternatives!r})")
        if len(alternatives) >= 2:
            self.stack.append(SessionCheckpoint(
                pair=self.pair,
                untried=tuple(other for other in alternatives
                              if other != label),
                depth=len(self.trace)))
        self.pair = moves[label][0]
        self.allowed = None
        self.trace.append(self.pair)
        return self.pair

    def can_rollback(self) -> bool:
        return any(checkpoint.untried for checkpoint in self.stack)

    def rollback(self) -> bool:
        """Rewind to the nearest checkpoint with an untried alternative.

        Restores the checkpointed pair, truncates the trace back to the
        checkpoint's prefix, and restricts the next choice to the
        untried labels.  Returns ``False`` when every checkpoint is
        exhausted (the stack never regrows past this point: rollback is
        a strict descent).
        """
        while self.stack:
            checkpoint = self.stack.pop()
            if not checkpoint.untried:
                continue
            self.pair = checkpoint.pair
            self.allowed = frozenset(checkpoint.untried)
            del self.trace[checkpoint.depth:]
            self.rollbacks += 1
            return True
        return False

    def run(self, max_steps: int = 10_000, chooser=None) -> str:
        """Drive the session greedily with rollback-on-stuck.

        *chooser* picks among the enabled labels (default: the canonical
        first).  Returns ``"completed"`` (client terminated),
        ``"exhausted"`` (stuck with every checkpoint tried — on acyclic
        pair graphs this is exactly non-reversible-compliance) or
        ``"budget"``.
        """
        for _ in range(max_steps):
            if self.is_complete():
                return "completed"
            labels = self.enabled()
            if not labels:
                if not self.rollback():
                    return "exhausted"
                continue
            self.sync(chooser(labels) if chooser is not None
                      else labels[0])
        return "budget"


# -- the decider -------------------------------------------------------------

@dataclass(frozen=True)
class ReversibleWitness:
    """A replayable proof that rollback cannot restore compliance.

    ``ranks`` assigns every doomed pair its lfp stage; ``strategy`` is
    the adversary's answer book — for each doomed pair of positive rank,
    one doomed successor per enabled label, of strictly smaller rank.
    ``client``/``server`` are the (projected) terms the proof is about,
    so :meth:`replays` is self-contained.
    """

    client: HistoryExpression
    server: HistoryExpression
    initial: PairState
    ranks: tuple[tuple[PairState, int], ...]
    strategy: tuple[tuple[PairState, tuple[tuple[object, PairState], ...]],
                    ...]

    def rank_table(self) -> dict[PairState, int]:
        return dict(self.ranks)

    def strategy_table(self) -> dict[PairState, dict[object, PairState]]:
        return {pair: dict(answers) for pair, answers in self.strategy}

    def replays(self) -> bool:
        """Re-derive the synchronisation moves and check the proof: the
        initial pair is ranked; every ranked pair is non-terminated;
        rank 0 means no synchronisation at all; positive rank means the
        strategy answers *every* enabled label with a genuine successor
        of strictly smaller rank."""
        client_lts = Contract(self.client, already_projected=True).lts
        server_lts = Contract(self.server, already_projected=True).lts
        ranks = self.rank_table()
        strategy = self.strategy_table()
        if self.initial not in ranks:
            return False
        for pair, rank in ranks.items():
            if is_terminated(pair[0]):
                return False
            moves = sync_moves(client_lts, server_lts, pair)
            if rank == 0:
                if moves:
                    return False
                continue
            answers = strategy.get(pair)
            if answers is None or set(answers) != set(moves):
                return False
            for label, successor in answers.items():
                if successor not in moves[label]:
                    return False
                successor_rank = ranks.get(successor)
                if successor_rank is None or successor_rank >= rank:
                    return False
        return True

    def describe(self, limit: int = 6) -> str:
        """A bounded, human-readable summary of the doom proof."""
        lines = [f"{len(self.ranks)} doomed pair(s); initial rank "
                 f"{self.rank_table()[self.initial]}"]
        for pair, rank in self.ranks[:limit]:
            lines.append(f"  rank {rank}: ⟨{pair[0]}, {pair[1]}⟩")
        if len(self.ranks) > limit:
            lines.append(f"  ... {len(self.ranks) - limit} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class ReversibleResult:
    """Outcome of :func:`check_reversible`.

    ``explored_states`` counts the synchronisation-reachable pairs the
    lfp ran over; on failure ``witness`` is the adversary strategy and
    ``trace`` one demonic play from the initial pair to a rank-0 pair
    (the canonical least label at every step).
    """

    compliant: bool
    explored_states: int
    witness: ReversibleWitness | None = None
    trace: tuple[PairState, ...] | None = None

    def __bool__(self) -> bool:
        return self.compliant


def check_reversible(client: HistoryExpression | Contract,
                     server: HistoryExpression | Contract,
                     *, engine: str = "interpreted",
                     max_states: int = DEFAULT_STATE_LIMIT
                     ) -> ReversibleResult:
    """Decide reversible compliance of ``client``/``server``.

    ``engine="interpreted"`` runs the doom lfp over the term-level pair
    graph; ``engine="compiled"`` runs the identical fixpoint over the
    interned integer tables of :mod:`repro.compiled` — same verdict,
    ranks, strategy and play (the differential suite asserts it).
    """
    client_term = _project(client)
    server_term = _project(server)
    if engine not in ("interpreted", "compiled"):
        raise ValueError(f"unknown reversible engine {engine!r} "
                         "(expected 'interpreted' or 'compiled')")
    tel = _telemetry.active()
    if tel is None:
        return _decide(client_term, server_term, engine, max_states)
    with tel.tracer.span("compliance.reversible", engine=engine) as span:
        result = _decide(client_term, server_term, engine, max_states)
        span.set(compliant=result.compliant,
                 explored_states=result.explored_states)
        tel.metrics.counter(
            "compliance.reversible_checks", engine=engine,
            verdict="compliant" if result.compliant
            else "doomed").inc()
        tel.emit("reversible.verdict", engine=engine,
                 compliant=result.compliant,
                 explored=result.explored_states)
        return result


def reversibly_compliant(client: HistoryExpression | Contract,
                         server: HistoryExpression | Contract) -> bool:
    """The bare reversible-compliance verdict."""
    return check_reversible(client, server).compliant


def _project(value: HistoryExpression | Contract) -> HistoryExpression:
    if isinstance(value, Contract):
        return value.term
    return Contract(value).term


@lru_cache(maxsize=REVERSIBLE_CACHE_SIZE)
def _decide(client_term: HistoryExpression, server_term: HistoryExpression,
            engine: str, max_states: int) -> ReversibleResult:
    if engine == "compiled":
        # Imported lazily: the compiled layer builds on this module.
        from repro.compiled.reversible import compiled_check_reversible
        return compiled_check_reversible(client_term, server_term,
                                         max_states)
    return _interpreted(client_term, server_term, max_states)


def _interpreted(client_term: HistoryExpression,
                 server_term: HistoryExpression,
                 max_states: int) -> ReversibleResult:
    client_c = Contract(client_term, already_projected=True)
    server_c = Contract(server_term, already_projected=True)
    client_lts = client_c.lts
    server_lts = server_c.lts
    initial: PairState = (client_term, server_term)

    # 1. The synchronisation-reachable pair closure, with per-label
    #    successor groups (the game board).
    moves: dict[PairState, dict[object, tuple[PairState, ...]]] = {}
    order: list[PairState] = [initial]
    seen: set[PairState] = {initial}
    cursor = 0
    while cursor < len(order):
        pair = order[cursor]
        cursor += 1
        pair_moves = sync_moves(client_lts, server_lts, pair)
        moves[pair] = pair_moves
        for successors in pair_moves.values():
            for successor in successors:
                if successor in seen:
                    continue
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "reversible pair graph")
                seen.add(successor)
                order.append(successor)

    # 2. The doom lfp, round-synchronised so ranks are canonical (the
    #    minimal stage) regardless of iteration order.  Commits happen
    #    after each scan: membership tests inside a round only see
    #    strictly earlier ranks, which is what makes the witness's
    #    rank-decrease check sound.
    doomed: dict[PairState, int] = {}
    strategy: dict[PairState, dict[object, PairState]] = {}
    rank = 0
    while True:
        newly: list[tuple[PairState, dict[object, PairState]]] = []
        for pair in order:
            if pair in doomed or is_terminated(pair[0]):
                continue
            answers: dict[object, PairState] = {}
            refuted = True
            for label, successors in moves[pair].items():
                picked = next((successor for successor in successors
                               if successor in doomed), None)
                if picked is None:
                    refuted = False
                    break
                answers[label] = picked
            if refuted:
                newly.append((pair, answers))
        if not newly:
            break
        for pair, answers in newly:
            doomed[pair] = rank
            strategy[pair] = answers
        rank += 1

    explored = len(order)
    if initial not in doomed:
        return ReversibleResult(True, explored)
    return ReversibleResult(
        False, explored,
        witness=_build_witness(client_term, server_term, initial,
                               doomed, strategy),
        trace=_demonic_play(initial, doomed, strategy))


def _build_witness(client_term, server_term, initial,
                   doomed: dict[PairState, int],
                   strategy: dict[PairState, dict[object, PairState]]
                   ) -> ReversibleWitness:
    ranks = tuple(sorted(doomed.items(),
                         key=lambda item: (item[1], repr(item[0]))))
    frozen_strategy = tuple(
        (pair, tuple(sorted(answers.items(),
                            key=lambda item: repr(item[0]))))
        for pair, answers in sorted(strategy.items(),
                                    key=lambda item: repr(item[0]))
        if answers)
    return ReversibleWitness(client=client_term, server=server_term,
                             initial=initial, ranks=ranks,
                             strategy=frozen_strategy)


def _demonic_play(initial: PairState, doomed: dict[PairState, int],
                  strategy: dict[PairState, dict[object, PairState]]
                  ) -> tuple[PairState, ...]:
    """One play following the adversary strategy from the initial pair
    down to a rank-0 pair: the system plays the canonical least label,
    the adversary answers from the strategy.  Rank strictly decreases,
    so the play is finite and ends genuinely stuck."""
    play = [initial]
    current = initial
    while doomed[current] > 0:
        answers = strategy[current]
        label = min(answers, key=repr)
        current = answers[label]
        play.append(current)
    return tuple(play)


track_cache("reversible.decide", _decide)

_CACHE_NAMES = ["reversible.decide"]


def reversible_cache_stats() -> dict[str, dict[str, int]]:
    """Hits/misses/size of the reversible decider memo."""
    return cache_stats(*_CACHE_NAMES)


def clear_reversible_caches() -> None:
    _decide.cache_clear()
    reset_cache_stats(*_CACHE_NAMES)


register_cache_clearer(clear_reversible_caches)
register_cache_stat_names(*_CACHE_NAMES)

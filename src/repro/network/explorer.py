"""Exhaustive exploration of network state spaces.

The explorer is the *ground truth* against which the paper's modular
static analysis is validated: it enumerates every configuration reachable
under a plan in the **unfiltered** semantics (no angelic validity
pruning) and reports

* security violations — a component history that stops being valid;
* stuck components — a component that can no longer move but has not
  successfully terminated (missing communication / unserved request);
* whether every maximal run ends in success.

A plan is *valid* in the paper's sense exactly when the exploration finds
neither violations nor stuck components: such executions never need a
run-time monitor and never miss a communication (Section 5).

Configurations embed full histories, so state spaces are finite only for
terminating networks; recursive services should be checked with the
abstracted checker in :mod:`repro.analysis.security` instead.  The
exploration is bounded and reports truncation honestly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.plans import Plan, PlanVector
from repro.core.validity import is_valid
from repro.network.config import Configuration
from repro.network.repository import Repository
from repro.network.semantics import (NetworkTransition, classify_stuckness,
                                     network_transitions)

#: Default bound on explored configurations.
DEFAULT_CONFIGURATION_LIMIT = 100_000


@dataclass
class ExplorationResult:
    """Everything the exhaustive exploration learned."""

    explored: int = 0
    complete: bool = True
    violations: list[tuple[Configuration, NetworkTransition]] = field(
        default_factory=list)
    stuck: list[tuple[Configuration, int, str]] = field(default_factory=list)
    terminal_success: int = 0

    @property
    def secure(self) -> bool:
        """No reachable security violation."""
        return not self.violations

    @property
    def unfailing(self) -> bool:
        """No reachable stuck component."""
        return not self.stuck

    @property
    def valid(self) -> bool:
        """The paper's plan validity: secure **and** unfailing, with the
        whole (finite) state space covered."""
        return self.secure and self.unfailing and self.complete

    def summary(self) -> str:
        """A one-paragraph human-readable digest."""
        status = "VALID" if self.valid else "INVALID"
        parts = [f"{status}: explored {self.explored} configurations"
                 f"{'' if self.complete else ' (truncated!)'}",
                 f"{self.terminal_success} successful terminal states",
                 f"{len(self.violations)} security violations",
                 f"{len(self.stuck)} stuck configurations"]
        return "; ".join(parts)


def explore(configuration: Configuration, plans: PlanVector | Plan,
            repository: Repository,
            max_configurations: int = DEFAULT_CONFIGURATION_LIMIT,
            stop_at_first_flaw: bool = False,
            commit_outputs: bool = True) -> ExplorationResult:
    """BFS over all configurations reachable in the unfiltered semantics.

    A transition whose appended labels make the component history invalid
    is recorded as a security violation (and not expanded further — the
    monitor would have aborted there; everything beyond is noise).

    *commit_outputs* (default on) explores the demonic
    output-commitment semantics, so that a partner unable to handle some
    committed output shows up as a stuck configuration — without it,
    exploration would be as angelic about internal choice as rule Synch
    and could miss non-compliance.
    """
    result = ExplorationResult()
    seen: set[Configuration] = {configuration}
    frontier: deque[Configuration] = deque([configuration])

    while frontier:
        current = frontier.popleft()
        result.explored += 1

        moves = list(network_transitions(current, plans, repository,
                                         enforce_validity=False,
                                         commit_outputs=commit_outputs))

        # Stuckness per component (not per configuration: one component
        # finishing does not excuse another being blocked).
        for index, component in enumerate(current.components):
            plan = plans if isinstance(plans, Plan) else plans[index]
            verdict = classify_stuckness(component, plan, repository,
                                         commit_outputs=commit_outputs)
            if verdict in ("security", "communication"):
                result.stuck.append((current, index, verdict))
                if stop_at_first_flaw:
                    return result

        if not moves and current.is_terminated():
            result.terminal_success += 1

        for transition in moves:
            moved = transition.successor.components[transition.component]
            if transition.appends and not is_valid(moved.history):
                result.violations.append((current, transition))
                if stop_at_first_flaw:
                    return result
                continue
            if transition.successor not in seen:
                if len(seen) >= max_configurations:
                    result.complete = False
                    return result
                seen.add(transition.successor)
                frontier.append(transition.successor)
    return result


def plan_is_valid_exhaustive(configuration: Configuration,
                             plans: PlanVector | Plan,
                             repository: Repository,
                             max_configurations: int =
                             DEFAULT_CONFIGURATION_LIMIT) -> bool:
    """Decide plan validity by brute force (the oracle for the static
    analysis)."""
    return explore(configuration, plans, repository, max_configurations,
                   stop_at_first_flaw=True).valid

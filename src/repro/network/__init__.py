"""Networks of located services with nested sessions (Definition 2).

Configurations, the repository of published services, the operational
rules (Open/Close/Session/Net/Access/Synch), a step-by-step simulator, an
exhaustive explorer, and the run-time reference monitor the static
analysis makes redundant.
"""

from repro.network.config import (Component, Configuration, Leaf,
                                  SessionNode)
from repro.network.explorer import (ExplorationResult, explore,
                                    plan_is_valid_exhaustive)
from repro.network.monitor import ReferenceMonitor
from repro.network.repository import Repository
from repro.network.semantics import (NetworkTransition, network_transitions,
                                     stuck_components)
from repro.network.simulator import Simulator, TraceLog

__all__ = [
    "Component", "Configuration", "Leaf", "SessionNode",
    "ExplorationResult", "explore", "plan_is_valid_exhaustive",
    "ReferenceMonitor", "Repository", "NetworkTransition",
    "network_transitions", "stuck_components", "Simulator", "TraceLog",
]

"""The global trusted repository of published services (Def. 2).

Services ``R = {ℓ_j : H_j | j ∈ J}`` are hosted at locations and "always
available for joining sessions": opening a session against ``ℓ_j`` spawns
a fresh copy of ``H_j`` (the paper assumes services can replicate their
code at will), so the repository never mutates during execution.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.syntax import HistoryExpression
from repro.core.wellformed import check_well_formed


class Repository:
    """An immutable map from locations to published service behaviours."""

    __slots__ = ("_services",)

    def __init__(self, services: Mapping[str, HistoryExpression] | None = None,
                 validate: bool = True) -> None:
        self._services: dict[str, HistoryExpression] = dict(services or {})
        if validate:
            for location, term in self._services.items():
                check_well_formed(term)

    def publish(self, location: str,
                term: HistoryExpression) -> "Repository":
        """A repository extended with ``location : term`` (functional
        update; publishing over an existing location replaces it)."""
        check_well_formed(term)
        services = dict(self._services)
        services[location] = term
        return Repository(services, validate=False)

    def get(self, location: str) -> HistoryExpression | None:
        """The service at *location*, or ``None``."""
        return self._services.get(location)

    def __getitem__(self, location: str) -> HistoryExpression:
        return self._services[location]

    def __contains__(self, location: str) -> bool:
        return location in self._services

    def __len__(self) -> int:
        return len(self._services)

    def locations(self) -> tuple[str, ...]:
        """All publishing locations, in insertion order."""
        return tuple(self._services)

    def items(self) -> Iterator[tuple[str, HistoryExpression]]:
        """Iterate over (location, service) pairs."""
        return iter(self._services.items())

    def __str__(self) -> str:
        inner = ", ".join(self._services)
        return f"Repository({inner})"

"""Rendering computations in the style of Figure 3.

Turns a simulator's :class:`~repro.network.simulator.TraceLog` into the
paper's step-by-step presentation: one line per transition with the
arrow label (``open_{r,φ}``, ``τ``, events, ``close_{r,φ}``), the
location that moved, and the resulting per-component histories.
"""

from __future__ import annotations

from repro.core.actions import Tau
from repro.network.simulator import Simulator, TraceLog


def describe_transition(transition) -> str:
    """One Figure-3-style arrow label for a fired transition."""
    if isinstance(transition.label, Tau):
        channel = f"({transition.channel})" if transition.channel else ""
        return f"τ{channel}"
    return str(transition.label)


def render_trace(log: TraceLog, show_components: bool = True) -> str:
    """A multi-line rendering of a whole run."""
    lines = []
    for record in log.records:
        transition = record.transition
        where = transition.location or "?"
        component = (f" [component {transition.component}]"
                     if show_components else "")
        lines.append(f"step {record.index + 1:3d}: "
                     f"--{describe_transition(transition)}--> "
                     f"at {where}{component}")
    return "\n".join(lines)


def render_state(simulator: Simulator) -> str:
    """The current configuration in the paper's ``η, S ∥ …`` notation."""
    parts = []
    for index, component in enumerate(simulator.configuration.components):
        parts.append(f"  [{index}] {component.history}, {component.tree}")
    return "\n".join(parts)


def render_run(simulator: Simulator) -> str:
    """Trace plus final state — the full Figure-3-style report."""
    return (render_trace(simulator.log) + "\n\nfinal configuration:\n"
            + render_state(simulator))

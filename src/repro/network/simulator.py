"""Step-by-step execution of networks.

The :class:`Simulator` drives one computation of a configuration under a
plan vector — the kind of run displayed in Figure 3 of the paper.  It can
run *monitored* (the angelic semantics: moves whose history extension is
invalid are filtered out, and the run aborts if a component is blocked by
the filter) or *unmonitored* (what a deployment without a reference
monitor does: every enabled move may fire, and validity is simply
recorded).

Schedulers: deterministic round-robin, seeded random, or caller-supplied
selection via :meth:`Simulator.fire_matching` — the latter is how the
test suite replays the exact step sequence of Figure 3.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.errors import ReproError, SecurityViolationError
from repro.core.plans import Plan, PlanVector
from repro.core.validity import History, first_invalid_prefix, is_valid
from repro.network.config import Configuration
from repro.network.repository import Repository
from repro.network.semantics import (NetworkTransition, network_transitions,
                                     stuck_components)
from repro.observability import runtime as _telemetry


class RunOutcome(enum.Enum):
    """How a :meth:`Simulator.run` ended.

    ``STEP_BUDGET_EXCEEDED`` means the run consumed *max_steps* with
    moves still enabled — truncation, not termination.  Before this
    marker existed the two were indistinguishable on the trace, which
    made supervisors treat truncated runs as successes.
    """

    TERMINATED = "terminated"
    STUCK = "stuck"
    STEP_BUDGET_EXCEEDED = "step-budget-exceeded"


#: Convenience alias: ``log.outcome is StepBudgetExceeded``.
StepBudgetExceeded = RunOutcome.STEP_BUDGET_EXCEEDED


@dataclass(frozen=True)
class TraceRecord:
    """One fired transition together with the step index."""

    index: int
    transition: NetworkTransition


@dataclass
class TraceLog:
    """The record of a whole run.

    ``outcome`` is ``None`` until a :meth:`Simulator.run` finishes (the
    stepping API never sets it); afterwards it tells termination,
    stuckness and step-budget truncation apart.
    """

    records: list[TraceRecord] = field(default_factory=list)
    outcome: RunOutcome | None = None

    def labels(self) -> tuple:
        """The fired labels, in order."""
        return tuple(record.transition.label for record in self.records)

    def rules(self) -> tuple[str, ...]:
        """The rules fired, in order (``access``/``open``/``close``/
        ``synch``)."""
        return tuple(record.transition.rule for record in self.records)

    def __len__(self) -> int:
        return len(self.records)


class Simulator:
    """An explicit-state interpreter for network configurations."""

    def __init__(self, configuration: Configuration,
                 plans: PlanVector | Plan,
                 repository: Repository,
                 monitored: bool = True,
                 seed: int | None = None) -> None:
        self.configuration = configuration
        self.plans = plans
        self.repository = repository
        self.monitored = monitored
        self.log = TraceLog()
        self._random = random.Random(seed)
        # Per-component telemetry spans: a lazily opened root span per
        # component, with a stack of open session spans under it (session
        # opens push, closes pop; communications and framings become
        # point events on the innermost open session).
        self._component_spans: dict[int, object] = {}
        self._session_stacks: dict[int, list] = {}
        # Flight-recorder seqs of the "session.open" events mirroring
        # the open session spans, so closes (and interruptions) carry a
        # causal link back to the exact open that started them.
        self._session_open_events: dict[int, list[int]] = {}

    # -- inspection ---------------------------------------------------------

    def available(self) -> list[NetworkTransition]:
        """The transitions enabled right now."""
        return list(network_transitions(self.configuration, self.plans,
                                        self.repository,
                                        enforce_validity=self.monitored))

    def histories(self) -> tuple[History, ...]:
        """The per-component histories of the current configuration."""
        return tuple(component.history
                     for component in self.configuration.components)

    def is_terminated(self) -> bool:
        """True iff every component has successfully finished."""
        return self.configuration.is_terminated()

    def stuck(self) -> tuple[int, ...]:
        """Indices of currently stuck components."""
        return stuck_components(self.configuration, self.plans,
                                self.repository,
                                enforce_validity=self.monitored)

    def all_histories_valid(self) -> bool:
        """Validity of every component history (always true in monitored
        runs; informative in unmonitored ones)."""
        return all(is_valid(component.history)
                   for component in self.configuration.components)

    def violations(self) -> list[tuple[int, History]]:
        """Components whose history is invalid, with the shortest invalid
        prefix (unmonitored runs only can produce these)."""
        found = []
        for index, component in enumerate(self.configuration.components):
            prefix = first_invalid_prefix(component.history)
            if prefix is not None:
                found.append((index, prefix))
        return found

    # -- stepping -----------------------------------------------------------

    def fire(self, transition: NetworkTransition) -> None:
        """Fire *transition*, updating configuration and log."""
        self.log.records.append(TraceRecord(len(self.log.records),
                                            transition))
        self.configuration = transition.successor
        tel = _telemetry.active()
        if tel is not None:
            self._record_transition(tel, transition)

    # -- telemetry ----------------------------------------------------------

    def _record_transition(self, tel, transition: NetworkTransition) -> None:
        """Mirror one fired transition into the span tree and registry."""
        index = transition.component
        step_index = len(self.log.records) - 1
        tel.metrics.counter("simulator.steps", rule=transition.rule).inc()

        root = self._component_spans.get(index)
        if root is None:
            location = (transition.location
                        or f"component-{index}")
            root = tel.tracer.start_span("simulator.component",
                                         parent=None,
                                         component=index,
                                         location=location)
            self._component_spans[index] = root
            self._session_stacks[index] = []
        stack = self._session_stacks[index]
        current = stack[-1] if stack else root

        rule = transition.rule
        if rule == "open":
            request = getattr(transition.label, "request", None)
            span = tel.tracer.start_span(
                "simulator.session", parent=current,
                request=request, opened_at_step=step_index)
            stack.append(span)
            opened = tel.events.emit(
                "session.open", span=span.span_id, component=index,
                request=str(request), step=step_index)
            self._session_open_events.setdefault(index, []).append(
                opened.seq)
            tel.metrics.counter("simulator.sessions_opened").inc()
        elif rule == "close":
            if stack:
                span = stack.pop()
                span.set(closed_at_step=step_index)
                tel.tracer.end_span(span)
                open_seqs = self._session_open_events.get(index)
                tel.events.emit(
                    "session.close", span=span.span_id, component=index,
                    step=step_index,
                    cause=open_seqs.pop() if open_seqs else None)
            tel.metrics.counter("simulator.sessions_closed").inc()
        elif rule == "synch":
            current.add_event("communication", step=step_index,
                              channel=transition.channel)
            tel.metrics.counter("simulator.communications").inc()
        elif rule in ("access", "commit"):
            for label in transition.appends:
                if isinstance(label, FrameOpen):
                    current.add_event("framing_open", step=step_index,
                                      policy=str(label.policy))
                elif isinstance(label, FrameClose):
                    current.add_event("framing_close", step=step_index,
                                      policy=str(label.policy))
                elif isinstance(label, Event):
                    current.add_event("access", step=step_index,
                                      event=str(label))
        # Framing labels appended by open/close rules ride along too.
        if rule in ("open", "close"):
            target = stack[-1] if stack else root
            for label in transition.appends:
                if isinstance(label, FrameOpen):
                    target.add_event("framing_open", step=step_index,
                                     policy=str(label.policy))
                elif isinstance(label, FrameClose):
                    target.add_event("framing_close", step=step_index,
                                     policy=str(label.policy))

    def _close_spans(self, tel) -> None:
        """Finish every span still open (end of a run; sessions left open
        by an aborted or truncated run are marked)."""
        for index, stack in self._session_stacks.items():
            open_seqs = self._session_open_events.get(index, [])
            while stack:
                span = stack.pop()
                span.set(left_open=True)
                tel.tracer.end_span(span)
                tel.events.emit(
                    "session.interrupted", span=span.span_id,
                    component=index,
                    cause=open_seqs.pop() if open_seqs else None)
        for index, root in self._component_spans.items():
            root.set(steps=len(self.log.records),
                     terminated=self.configuration[index].is_terminated())
            tel.tracer.end_span(root)
        self._component_spans.clear()
        self._session_stacks.clear()
        self._session_open_events.clear()

    def fire_matching(self, predicate: Callable[[NetworkTransition], bool]
                      ) -> NetworkTransition:
        """Fire the first available transition satisfying *predicate*.

        Raises :class:`ReproError` when none matches — used to replay
        prescribed computations (e.g. Figure 3) and fail loudly if the
        semantics diverges from the script.
        """
        for transition in self.available():
            if predicate(transition):
                self.fire(transition)
                return transition
        raise ReproError("no available transition matches the predicate; "
                         f"enabled: {[str(t) for t in self.available()]}")

    def step_random(self) -> NetworkTransition | None:
        """Fire a uniformly random enabled transition (``None`` if
        none)."""
        options = self.available()
        if not options:
            return None
        transition = self._random.choice(options)
        self.fire(transition)
        return transition

    def run(self, max_steps: int = 10_000,
            scheduler: Callable[[Sequence[NetworkTransition]],
                                NetworkTransition] | None = None
            ) -> TraceLog:
        """Run until termination, stuckness, or *max_steps*.

        The log's :attr:`TraceLog.outcome` records how the run ended —
        in particular :data:`StepBudgetExceeded` when *max_steps* fired
        with moves still enabled, so callers can tell truncation from
        completion.

        In monitored mode a run that leaves a component security-stuck
        raises :class:`SecurityViolationError` — the monitor aborted it.
        """
        tel = _telemetry.active()
        if tel is None:
            self._run_loop(max_steps, scheduler)
            if self.monitored:
                self._raise_if_monitor_aborted()
            return self.log
        with tel.tracer.span("simulator.run",
                             monitored=self.monitored) as span:
            try:
                self._run_loop(max_steps, scheduler)
                if self.monitored:
                    self._raise_if_monitor_aborted()
            finally:
                self._close_spans(tel)
                span.set(steps=len(self.log),
                         terminated=self.is_terminated(),
                         outcome=(self.log.outcome.value
                                  if self.log.outcome else None))
            return self.log

    def _run_loop(self, max_steps: int, scheduler) -> None:
        """The scheduling loop shared by both telemetry paths; sets
        ``self.log.outcome``."""
        exhausted = True
        for _ in range(max_steps):
            options = self.available()
            if not options:
                exhausted = False
                break
            chosen = (scheduler(options) if scheduler is not None
                      else self._random.choice(options))
            self.fire(chosen)
        if exhausted and self.available():
            self.log.outcome = RunOutcome.STEP_BUDGET_EXCEEDED
        elif self.is_terminated():
            self.log.outcome = RunOutcome.TERMINATED
        else:
            self.log.outcome = RunOutcome.STUCK

    def _raise_if_monitor_aborted(self) -> None:
        from repro.network.semantics import classify_stuckness
        for index, component in enumerate(self.configuration.components):
            plan = (self.plans if isinstance(self.plans, Plan)
                    else self.plans[index])
            verdict = classify_stuckness(component, plan, self.repository)
            if verdict == "security":
                policy_name, label = self._blame_blocked(component, plan)
                tel = _telemetry.active()
                if tel is not None:
                    tel.emit("monitor.abort", component=index,
                             policy=str(policy_name), label=str(label))
                raise SecurityViolationError(
                    policy=dict(component.history.active_policies()),
                    history=component.history,
                    event="<all enabled events blocked>",
                    policy_name=policy_name,
                    offending_label=label)

    def _blame_blocked(self, component, plan
                       ) -> tuple[str | None, str | None]:
        """The (policy name, label) pair behind a security-stuck
        component: the first unfiltered move whose history extension a
        policy refuses."""
        from repro.core.validity import ValidityMonitor
        from repro.network.semantics import component_moves
        for move in component_moves(component, plan, self.repository,
                                    enforce_validity=False):
            monitor = ValidityMonitor(component.history)
            for label in move.appends:
                if not monitor.can_extend(label):
                    blamed = monitor.blame(label)
                    name = blamed[0].name if blamed else None
                    return name, str(label)
                monitor.extend(label)
        return None, None

"""The run-time reference monitor.

This is the component the paper's static analysis makes redundant: it
observes the labels a component appends to its history and aborts the
execution as soon as validity is about to break.  The ablation benchmark
(EXPERIMENTS.md, experiment A1) runs the same network with and without it
to quantify the cost that a *valid plan* eliminates.

The heavy lifting is done by
:class:`repro.core.validity.ValidityMonitor`; this module packages it
with abort semantics and bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import HistoryLabel
from repro.core.errors import SecurityViolationError
from repro.core.validity import History, ValidityMonitor
from repro.observability import runtime as _telemetry


@dataclass
class MonitorStatistics:
    """Counters describing the work a monitor performed.

    Kept for per-instance inspection; when telemetry is enabled the same
    quantities also land in the process registry
    (``monitor.labels{kind=…}``, ``monitor.aborts``) and on the
    monitor's span as framing/event records, so whole-run dashboards do
    not have to collect statistics objects by hand.
    """

    labels_observed: int = 0
    events_checked: int = 0
    framings_opened: int = 0
    aborts: int = 0
    #: Machine-readable causes, one ``(policy name, offending label)``
    #: pair per abort, in abort order — what chaos reports aggregate.
    abort_causes: list[tuple[str, str]] = field(default_factory=list)


class ReferenceMonitor:
    """An aborting observer of one component's history.

    Feed every label the component is about to log through
    :meth:`observe`; the monitor raises :class:`SecurityViolationError`
    (and counts the abort) if the extension would violate an active
    policy.

    With telemetry enabled each monitor opens a ``monitor.session`` span
    (nested under the caller's current span, e.g. a simulated session)
    and records every observed label as a point event on it; the span is
    closed by :meth:`finish` or at the first abort.
    """

    def __init__(self) -> None:
        self._monitor = ValidityMonitor()
        self._history = History()
        self.statistics = MonitorStatistics()
        tel = _telemetry.active()
        self._span = (tel.tracer.start_span("monitor.session")
                      if tel is not None else None)

    @property
    def history(self) -> History:
        """The (valid) history observed so far."""
        return self._history

    def finish(self) -> None:
        """Close the monitor's telemetry span (no-op when disabled)."""
        if self._span is not None:
            self._span.set(labels_observed=self.statistics.labels_observed,
                           aborts=self.statistics.aborts)
            tel = _telemetry.active()
            if tel is not None:
                tel.tracer.end_span(self._span)
            self._span = None

    def observe(self, label: HistoryLabel) -> None:
        """Check and record one label; raises on violation."""
        from repro.core.actions import Event, FrameClose, FrameOpen

        self.statistics.labels_observed += 1
        if isinstance(label, Event):
            self.statistics.events_checked += 1
            kind = "event"
        elif isinstance(label, FrameOpen):
            self.statistics.framings_opened += 1
            kind = "framing_open"
        elif isinstance(label, FrameClose):
            kind = "framing_close"
        else:
            kind = "label"
        tel = _telemetry.active()
        if tel is not None:
            tel.metrics.counter("monitor.labels", kind=kind).inc()
            if self._span is not None:
                self._span.add_event(kind, label=str(label))
        if not self._monitor.can_extend(label):
            self.statistics.aborts += 1
            blamed = self._monitor.blame(label)
            policy_name = blamed[0].name if blamed else None
            self.statistics.abort_causes.append(
                (policy_name or "<unknown>", str(label)))
            if tel is not None:
                tel.metrics.counter("monitor.aborts").inc()
                tel.metrics.counter(
                    "monitor.abort_causes",
                    policy=policy_name or "<unknown>").inc()
                if self._span is not None:
                    self._span.add_event("abort", label=str(label),
                                         policy=policy_name)
            self.finish()
            raise SecurityViolationError(
                policy=dict(self._monitor.active_policies()),
                history=self._history,
                event=label,
                policy_name=policy_name,
                offending_label=str(label))
        self._monitor.extend(label)
        self._history = self._history.append(label)

    def observe_all(self, labels) -> None:
        """Observe a sequence of labels, aborting at the first
        violation."""
        for label in labels:
            self.observe(label)

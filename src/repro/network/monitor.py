"""The run-time reference monitor.

This is the component the paper's static analysis makes redundant: it
observes the labels a component appends to its history and aborts the
execution as soon as validity is about to break.  The ablation benchmark
(EXPERIMENTS.md, experiment A1) runs the same network with and without it
to quantify the cost that a *valid plan* eliminates.

The heavy lifting is done by
:class:`repro.core.validity.ValidityMonitor`; this module packages it
with abort semantics and bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import HistoryLabel
from repro.core.errors import SecurityViolationError
from repro.core.validity import History, ValidityMonitor


@dataclass
class MonitorStatistics:
    """Counters describing the work a monitor performed."""

    labels_observed: int = 0
    events_checked: int = 0
    framings_opened: int = 0
    aborts: int = 0


class ReferenceMonitor:
    """An aborting observer of one component's history.

    Feed every label the component is about to log through
    :meth:`observe`; the monitor raises :class:`SecurityViolationError`
    (and counts the abort) if the extension would violate an active
    policy.
    """

    def __init__(self) -> None:
        self._monitor = ValidityMonitor()
        self._history = History()
        self.statistics = MonitorStatistics()

    @property
    def history(self) -> History:
        """The (valid) history observed so far."""
        return self._history

    def observe(self, label: HistoryLabel) -> None:
        """Check and record one label; raises on violation."""
        from repro.core.actions import Event, FrameOpen

        self.statistics.labels_observed += 1
        if isinstance(label, Event):
            self.statistics.events_checked += 1
        elif isinstance(label, FrameOpen):
            self.statistics.framings_opened += 1
        if not self._monitor.can_extend(label):
            self.statistics.aborts += 1
            raise SecurityViolationError(
                policy=dict(self._monitor.active_policies()),
                history=self._history,
                event=label)
        self._monitor.extend(label)
        self._history = self._history.append(label)

    def observe_all(self, labels) -> None:
        """Observe a sequence of labels, aborting at the first
        violation."""
        for label in labels:
            self.observe(label)

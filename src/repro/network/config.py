"""Network configurations: located services and (nested) sessions (Def. 2).

The grammar of networks is::

    N ::= N ∥ N | S          S ::= ℓ:H | [S, S]

A :class:`Leaf` is a located service ``ℓ:H``; a :class:`SessionNode` is a
session ``[S, S']`` whose *left* element is the participant that opened
the session (and therefore holds the ``close_{r,φ}`` residual).  Sessions
nest: a service engaged in a session may open a new one, which must be
closed before the enclosing session can be.

A :class:`Component` pairs a session tree with the execution history
``η`` it has produced; a :class:`Configuration` is the parallel
composition ``∥_i η_i, S_i`` of components.  All values are immutable and
hashable, so configurations serve directly as states for exhaustive
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.semantics import is_terminated
from repro.core.syntax import (FrameClosePending, HistoryExpression, Seq)
from repro.core.validity import History


@dataclass(frozen=True, slots=True)
class Leaf:
    """A located service ``ℓ:H``."""

    location: str
    term: HistoryExpression

    def __str__(self) -> str:
        return f"{self.location}:{self.term}"


@dataclass(frozen=True, slots=True)
class SessionNode:
    """A session ``[S, S']``; ``left`` opened the session."""

    left: "SessionTree"
    right: "SessionTree"

    def __str__(self) -> str:
        return f"[{self.left}, {self.right}]"


#: A session tree ``S``.
SessionTree = Union[Leaf, SessionNode]


def leaves(tree: SessionTree) -> Iterator[Leaf]:
    """All leaves of *tree*, left to right."""
    if isinstance(tree, Leaf):
        yield tree
        return
    yield from leaves(tree.left)
    yield from leaves(tree.right)


def locations(tree: SessionTree) -> tuple[str, ...]:
    """The locations occurring in *tree*, left to right."""
    return tuple(leaf.location for leaf in leaves(tree))


def session_depth(tree: SessionTree) -> int:
    """Nesting depth of sessions (0 for a bare located service)."""
    if isinstance(tree, Leaf):
        return 0
    return 1 + max(session_depth(tree.left), session_depth(tree.right))


def is_successfully_terminated(tree: SessionTree) -> bool:
    """True iff *tree* is a single located ``ε`` — all work done and all
    sessions closed."""
    return isinstance(tree, Leaf) and is_terminated(tree.term)


def pending_frame_closes(term: HistoryExpression) -> tuple:
    """The auxiliary function ``Φ`` of rule *Close*.

    ``Φ(H1·H2) = Φ(H1)·Φ(H2)``, ``Φ(Mφ) = Mφ``, ``Φ(H) = ε`` otherwise:
    collects the close framings still pending in a terminated-early
    service, so the client's history stays balanced.
    """
    from repro.core.actions import FrameClose

    if isinstance(term, Seq):
        return (pending_frame_closes(term.first)
                + pending_frame_closes(term.second))
    if isinstance(term, FrameClosePending):
        return (FrameClose(term.policy),)
    return ()


@dataclass(frozen=True, slots=True)
class Component:
    """One parallel component ``η, S`` of a configuration."""

    history: History
    tree: SessionTree

    @staticmethod
    def client(location: str, term: HistoryExpression) -> "Component":
        """A fresh client ``ε, ℓ:H`` with the empty history."""
        return Component(History(), Leaf(location, term))

    def is_terminated(self) -> bool:
        """True iff the component has successfully finished."""
        return is_successfully_terminated(self.tree)

    def __str__(self) -> str:
        return f"{self.history}, {self.tree}"


@dataclass(frozen=True, slots=True)
class Configuration:
    """A network configuration ``∥_i η_i, S_i``."""

    components: tuple[Component, ...]

    @staticmethod
    def of(*components: Component) -> "Configuration":
        """Build a configuration from components, in client order."""
        return Configuration(tuple(components))

    def replace(self, index: int, component: Component) -> "Configuration":
        """The configuration with component *index* replaced."""
        updated = list(self.components)
        updated[index] = component
        return Configuration(tuple(updated))

    def is_terminated(self) -> bool:
        """True iff every component has successfully finished."""
        return all(component.is_terminated()
                   for component in self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> Component:
        return self.components[index]

    def __str__(self) -> str:
        return " ∥ ".join(str(component) for component in self.components)

"""Operational semantics of networks (paper, Section 3).

Implements the rules *Open*, *Close*, *Session*, *Net*, *Access* and
*Synch* over the configurations of :mod:`repro.network.config`:

* **Access** — a leaf fires an event or framing ``γ ∈ Ev ∪ Frm``; it is
  appended to the component history, which must stay valid;
* **Open** — a leaf fires ``open_{r,φ}``; the plan selects ``ℓ_j``, a
  fresh copy of the repository service joins a new session
  ``[ℓ_i:H', ℓ_j:H_j]``, and ``Lφ`` is logged (when ``φ ≠ ∅``) provided
  the extended history is valid;
* **Close** — the opener of a session fires ``close_{r,φ}``; the partner
  is terminated and the history gains ``Φ(H_j'')·Mφ`` (the pending frame
  closes of the discarded service, then the session framing close);
* **Synch** — the two *direct* participants of a session exchange
  complementary actions ``a``/``ā``, producing ``τ``;
* **Session** / **Net** — contextual closure inside session trees and
  across parallel components.

The *angelic* validity filter of the paper (transitions whose history
extension would be invalid simply do not fire) can be switched off, which
models a deployment running without a monitor; the planner uses the
unfiltered semantics to certify that valid plans never need the filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.actions import (TAU, Event, FrameClose, FrameOpen,
                                HistoryLabel, Label, Receive, Send,
                                SessionClose, SessionOpen, co)
from repro.core.plans import Plan
from repro.core.semantics import step
from repro.core.syntax import InternalChoice
from repro.core.validity import is_valid
from repro.network.config import (Component, Configuration, Leaf,
                                  SessionNode, SessionTree,
                                  pending_frame_closes)
from repro.network.repository import Repository


@dataclass(frozen=True, slots=True)
class TreeMove:
    """A potential move of a session tree.

    ``kind`` is the rule that produced it: ``"access"`` (events and
    framings), ``"open"``, ``"close"``, ``"synch"``, or ``"offer"`` — an
    unmatched communication a :class:`Leaf` exposes to its enclosing
    session (only meaningful during move computation; offers never escape
    :func:`tree_moves`).

    ``appends`` are the labels the move adds to the component history.
    """

    kind: str
    label: Label
    tree: SessionTree
    appends: tuple[HistoryLabel, ...] = ()
    location: str = ""
    channel: str = ""

    def is_internal(self) -> bool:
        """True for moves a session context can lift as-is (rule
        *Session*)."""
        return self.kind in ("access", "open", "close", "synch", "commit")


def tree_moves(tree: SessionTree, plan: Plan,
               repository: Repository,
               commit_outputs: bool = False) -> Iterator[TreeMove]:
    """All moves of *tree* under *plan*, **including** unmatched
    communication offers of the root (callers normally want
    :func:`component_moves`, which drops them).

    With *commit_outputs* the semantics is *demonic* about internal
    choice: a participant may first commit to one output (a ``commit``
    move, label ``τ``), discarding the other branches, and only then look
    for a partner.  This realises the requirement that "the choice among
    various outputs is done regardless of the environment" — the paper's
    own interleaving rule Synch is angelic about it — and is what makes
    exhaustive exploration a sound oracle for compliance.
    """
    if isinstance(tree, Leaf):
        yield from _leaf_moves(tree, plan, repository, commit_outputs)
        return

    left_moves = tuple(tree_moves(tree.left, plan, repository,
                                  commit_outputs))
    right_moves = tuple(tree_moves(tree.right, plan, repository,
                                   commit_outputs))

    # Rule Session: lift the self-contained moves of either element.
    for move in left_moves:
        if move.is_internal():
            yield TreeMove(move.kind, move.label,
                           SessionNode(move.tree, tree.right),
                           move.appends, move.location, move.channel)
    for move in right_moves:
        if move.is_internal():
            yield TreeMove(move.kind, move.label,
                           SessionNode(tree.left, move.tree),
                           move.appends, move.location, move.channel)

    # Rules Synch and Close apply to the direct participants only.
    if isinstance(tree.left, Leaf) and isinstance(tree.right, Leaf):
        yield from _synchronisations(tree, left_moves, right_moves)
        yield from _session_closes(tree, left_moves)


def _leaf_moves(leaf: Leaf, plan: Plan, repository: Repository,
                commit_outputs: bool = False) -> Iterator[TreeMove]:
    if commit_outputs:
        outputs = [(label, successor) for label, successor in step(leaf.term)
                   if isinstance(label, Send)]
        if len(outputs) > 1:
            for label, successor in outputs:
                committed = InternalChoice(((label, successor),))
                yield TreeMove("commit", TAU,
                               Leaf(leaf.location, committed), (),
                               leaf.location, label.channel)
    for label, successor in step(leaf.term):
        if isinstance(label, Event):
            yield TreeMove("access", label, Leaf(leaf.location, successor),
                           (label,), leaf.location)
        elif isinstance(label, (FrameOpen, FrameClose)):
            yield TreeMove("access", label, Leaf(leaf.location, successor),
                           (label,), leaf.location)
        elif isinstance(label, SessionOpen):
            target = plan.lookup(label.request)
            if target is None:
                continue  # the plan serves no service for this request
            service = repository.get(target)
            if service is None:
                continue
            appends: tuple[HistoryLabel, ...] = ()
            if label.policy is not None:
                appends = (FrameOpen(label.policy),)
            yield TreeMove(
                "open", label,
                SessionNode(Leaf(leaf.location, successor),
                            Leaf(target, service)),
                appends, leaf.location)
        elif isinstance(label, SessionClose):
            # Only fires inside a session node (rule Close); expose as an
            # offer the parent recognises.
            yield TreeMove("offer-close", label,
                           Leaf(leaf.location, successor), (),
                           leaf.location)
        elif isinstance(label, (Send, Receive)):
            yield TreeMove("offer", label, Leaf(leaf.location, successor),
                           (), leaf.location)
        else:  # pragma: no cover - no other labels exist
            raise TypeError(f"unexpected label {label!r}")


def _synchronisations(tree: SessionNode, left_moves, right_moves
                      ) -> Iterator[TreeMove]:
    """Rule Synch between the two leaves of *tree*."""
    right_by_label: dict[Label, list[TreeMove]] = {}
    for move in right_moves:
        if move.kind == "offer":
            right_by_label.setdefault(move.label, []).append(move)
    for move in left_moves:
        if move.kind != "offer":
            continue
        for partner in right_by_label.get(co(move.label), ()):
            yield TreeMove("synch", TAU,
                           SessionNode(move.tree, partner.tree), (),
                           move.location, move.label.channel)


def _session_closes(tree: SessionNode, left_moves) -> Iterator[TreeMove]:
    """Rule Close: the opener (left leaf) fires ``close_{r,φ}``."""
    assert isinstance(tree.right, Leaf)
    for move in left_moves:
        if move.kind != "offer-close":
            continue
        label = move.label
        assert isinstance(label, SessionClose)
        appends = pending_frame_closes(tree.right.term)
        if label.policy is not None:
            appends = appends + (FrameClose(label.policy),)
        yield TreeMove("close", label, move.tree, appends, move.location)


@dataclass(frozen=True, slots=True)
class NetworkTransition:
    """One transition of a configuration: which component moved, by which
    rule/label, and the successor configuration."""

    component: int
    rule: str
    label: Label
    successor: Configuration
    appends: tuple[HistoryLabel, ...] = ()
    location: str = ""
    channel: str = ""

    def __str__(self) -> str:
        return (f"component {self.component} --{self.label}--> "
                f"[{self.rule} at {self.location or '?'}]")


def component_moves(component: Component, plan: Plan,
                    repository: Repository,
                    enforce_validity: bool = True,
                    commit_outputs: bool = False) -> Iterator[TreeMove]:
    """The fireable moves of one component (offers pruned, validity filter
    optionally applied — the paper's angelic semantics)."""
    for move in tree_moves(component.tree, plan, repository,
                           commit_outputs):
        if not move.is_internal():
            continue
        if enforce_validity and move.appends:
            if not is_valid(component.history.extend(move.appends)):
                continue
        yield move


def apply_move(component: Component, move: TreeMove) -> Component:
    """The component after firing *move*."""
    return Component(component.history.extend(move.appends), move.tree)


def network_transitions(configuration: Configuration, plans,
                        repository: Repository,
                        enforce_validity: bool = True,
                        commit_outputs: bool = False
                        ) -> Iterator[NetworkTransition]:
    """All transitions of *configuration* under the plan vector *plans*
    (rule Net: any component may move)."""
    for index, component in enumerate(configuration.components):
        plan = plans[index] if not isinstance(plans, Plan) else plans
        for move in component_moves(component, plan, repository,
                                    enforce_validity, commit_outputs):
            successor = configuration.replace(index,
                                              apply_move(component, move))
            yield NetworkTransition(index, move.kind, move.label, successor,
                                    move.appends, move.location,
                                    move.channel)


def stuck_components(configuration: Configuration, plans,
                     repository: Repository,
                     enforce_validity: bool = True,
                     commit_outputs: bool = False) -> tuple[int, ...]:
    """Indices of components that are stuck: not successfully terminated
    and without any fireable move."""
    stuck: list[int] = []
    for index, component in enumerate(configuration.components):
        if component.is_terminated():
            continue
        plan = plans[index] if not isinstance(plans, Plan) else plans
        has_move = False
        for _ in component_moves(component, plan, repository,
                                 enforce_validity, commit_outputs):
            has_move = True
            break
        if not has_move:
            stuck.append(index)
    return tuple(stuck)


def classify_stuckness(component: Component, plan: Plan,
                       repository: Repository,
                       commit_outputs: bool = False) -> str:
    """Why is *component* stuck?

    Returns ``"terminated"`` when it in fact finished; ``"security"``
    when dropping the validity filter would unblock it (all its enabled
    moves violate active policies — the monitor aborts it); otherwise
    ``"communication"`` (a missing co-action or an unbound request — the
    participants are not compliant / the plan is incomplete).
    """
    if component.is_terminated():
        return "terminated"
    for _ in component_moves(component, plan, repository,
                             enforce_validity=True,
                             commit_outputs=commit_outputs):
        return "not-stuck"
    for _ in component_moves(component, plan, repository,
                             enforce_validity=False,
                             commit_outputs=commit_outputs):
        return "security"
    return "communication"

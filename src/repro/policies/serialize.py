"""JSON (de)serialisation of usage automata and policies.

Policies are contracts between organisations; a deployable toolchain
must be able to ship them between repositories, version them, and audit
them — so automata and instantiated policies round-trip through plain
JSON-compatible dictionaries:

* guards serialise as a small expression tree
  (``{"kind": "compare", "op": "<=", …}``);
* frozensets and tuples in instantiation arguments are tagged
  (``{"@set": […]}`` / ``{"@tuple": […]}``) so the round trip restores
  hashable values exactly;
* :func:`dumps`/:func:`loads` wrap the dictionary forms with
  :mod:`json`.

``automaton_from_dict(automaton_to_dict(a)) == a`` and likewise for
policies — checked by unit and property-based tests.
"""

from __future__ import annotations

import json

from repro.core.errors import PolicyDefinitionError
from repro.policies.guards import (TRUE, And, Compare, Const, Guard, Name,
                                   Not, Or, Term, TrueGuard)
from repro.policies.usage_automata import (Edge, EventPattern, Policy,
                                           UsageAutomaton)


# -- guards -----------------------------------------------------------------

def guard_to_dict(guard: Guard) -> dict:
    """Serialise a guard expression."""
    if isinstance(guard, TrueGuard):
        return {"kind": "true"}
    if isinstance(guard, Compare):
        return {"kind": "compare", "op": guard.op,
                "left": _term_to_dict(guard.left),
                "right": _term_to_dict(guard.right)}
    if isinstance(guard, And):
        return {"kind": "and", "left": guard_to_dict(guard.left),
                "right": guard_to_dict(guard.right)}
    if isinstance(guard, Or):
        return {"kind": "or", "left": guard_to_dict(guard.left),
                "right": guard_to_dict(guard.right)}
    if isinstance(guard, Not):
        return {"kind": "not", "operand": guard_to_dict(guard.operand)}
    raise TypeError(f"unknown guard {guard!r}")


def guard_from_dict(data: dict) -> Guard:
    """Deserialise a guard expression."""
    kind = data.get("kind")
    if kind == "true":
        return TRUE
    if kind == "compare":
        return Compare(data["op"], _term_from_dict(data["left"]),
                       _term_from_dict(data["right"]))
    if kind == "and":
        return And(guard_from_dict(data["left"]),
                   guard_from_dict(data["right"]))
    if kind == "or":
        return Or(guard_from_dict(data["left"]),
                  guard_from_dict(data["right"]))
    if kind == "not":
        return Not(guard_from_dict(data["operand"]))
    raise PolicyDefinitionError(f"unknown guard kind {kind!r}")


def _term_to_dict(term: Term) -> dict:
    if isinstance(term, Name):
        return {"kind": "name", "name": term.name}
    if isinstance(term, Const):
        return {"kind": "const", "value": encode_value(term.constant)}
    raise TypeError(f"unknown guard term {term!r}")


def _term_from_dict(data: dict) -> Term:
    kind = data.get("kind")
    if kind == "name":
        return Name(data["name"])
    if kind == "const":
        return Const(decode_value(data["value"]))
    raise PolicyDefinitionError(f"unknown term kind {kind!r}")


# -- values -----------------------------------------------------------------

def encode_value(value: object) -> object:
    """Encode a (possibly frozenset/tuple-valued) argument for JSON."""
    if isinstance(value, frozenset):
        return {"@set": sorted((encode_value(v) for v in value),
                               key=repr)}
    if isinstance(value, tuple):
        return {"@tuple": [encode_value(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot serialise value {value!r}")


def decode_value(data: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, dict):
        if "@set" in data:
            return frozenset(decode_value(v) for v in data["@set"])
        if "@tuple" in data:
            return tuple(decode_value(v) for v in data["@tuple"])
        raise PolicyDefinitionError(f"unknown value encoding {data!r}")
    return data


# -- automata and policies ---------------------------------------------------

def automaton_to_dict(automaton: UsageAutomaton) -> dict:
    """Serialise a usage automaton."""
    return {
        "name": automaton.name,
        "states": sorted(automaton.states),
        "initial": automaton.initial,
        "offending": sorted(automaton.offending),
        "parameters": list(automaton.parameters),
        "variables": list(automaton.variables),
        "edges": [{
            "source": edge.source,
            "target": edge.target,
            "event": edge.pattern.event,
            "binders": list(edge.pattern.binders),
            "guard": guard_to_dict(edge.pattern.guard),
        } for edge in automaton.edges],
    }


def automaton_from_dict(data: dict) -> UsageAutomaton:
    """Deserialise a usage automaton (re-running all validation)."""
    edges = tuple(
        Edge(item["source"],
             EventPattern(item["event"], tuple(item["binders"]),
                          guard_from_dict(item["guard"])),
             item["target"])
        for item in data["edges"])
    return UsageAutomaton(
        name=data["name"],
        states=frozenset(data["states"]),
        initial=data["initial"],
        offending=frozenset(data["offending"]),
        edges=edges,
        parameters=tuple(data["parameters"]),
        variables=tuple(data["variables"]),
    )


def policy_to_dict(policy: Policy) -> dict:
    """Serialise an instantiated policy (automaton + arguments)."""
    return {
        "automaton": automaton_to_dict(policy.automaton),
        "arguments": [[name, encode_value(value)]
                      for name, value in policy.arguments],
    }


def policy_from_dict(data: dict) -> Policy:
    """Deserialise an instantiated policy."""
    automaton = automaton_from_dict(data["automaton"])
    arguments = {name: decode_value(value)
                 for name, value in data["arguments"]}
    return automaton.instantiate(**arguments)


def dumps(policy: Policy, **json_kwargs) -> str:
    """Policy → JSON text."""
    return json.dumps(policy_to_dict(policy), **json_kwargs)


def loads(text: str) -> Policy:
    """JSON text → policy."""
    return policy_from_dict(json.loads(text))

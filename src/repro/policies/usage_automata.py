"""Usage automata: parametric finite-state automata for security policies.

Usage automata (Bartoletti [3]; Figure 1 of the paper) specify *regular
properties of execution histories* in the **default-allow** style: the
automaton accepts exactly the *forbidden* traces, and a history respects
the policy when it is **not** accepted.

An automaton is parametric in two ways:

* **parameters** are chosen by the client when the policy is instantiated —
  the hotel policy ``φ(bl, p, t)`` of Figure 1 has the black list ``bl``
  and the thresholds ``p`` and ``t``;
* **variables** are universally quantified over resources: a trace violates
  the policy when *some* assignment of the variables makes an accepting run
  possible (e.g. "never read *x* after write *x*" for any file ``x``).

Edges carry an event pattern: the event name, a tuple of *binders* naming
the event's payload positions, and a guard over binders, variables and
parameters.  Under a fixed instantiation, events matched by no edge take an
implicit self-loop (the ``*`` edges of Figure 1), and offending states are
absorbing, so violation is prefix-monotone — the formal counterpart of
"nothing bad happened so far".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.actions import Event
from repro.core.errors import PolicyDefinitionError
from repro.policies.guards import TRUE, Guard


@dataclass(frozen=True, slots=True)
class EventPattern:
    """A pattern ``α_event(b1, …, bk) when guard`` on an edge.

    Each binder name either denotes a quantified variable of the automaton
    (then the event payload must equal the variable's value) or is local to
    the edge (then it is bound to the payload for the guard's benefit).

    A pattern with *no* binders is payload-agnostic: it matches an event
    with the right name and **any** arity.  A pattern with binders only
    matches events of exactly that arity.
    """

    event: str
    binders: tuple[str, ...] = ()
    guard: Guard = TRUE

    def __str__(self) -> str:
        inner = ",".join(self.binders)
        head = f"@{self.event}({inner})" if self.binders else f"@{self.event}"
        if self.guard == TRUE:
            return head
        return f"{head} when {self.guard}"


@dataclass(frozen=True, slots=True)
class Edge:
    """A transition ``source --pattern--> target`` of a usage automaton."""

    source: str
    pattern: EventPattern
    target: str

    def __str__(self) -> str:
        return f"{self.source} --{self.pattern}--> {self.target}"


#: Sentinel value of a quantified variable meaning "a resource different
#: from every value occurring in the trace" — such a variable matches no
#: event payload.
STAR = object()


@dataclass(frozen=True)
class UsageAutomaton:
    """A parametric usage automaton ``φ(parameters)``.

    ``offending`` are the accepting states: reaching one of them (under
    some assignment of ``variables``) means the policy is violated.
    """

    name: str
    states: frozenset[str]
    initial: str
    offending: frozenset[str]
    edges: tuple[Edge, ...]
    parameters: tuple[str, ...] = ()
    variables: tuple[str, ...] = ()

    _edges_from: dict[str, tuple[Edge, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise PolicyDefinitionError(
                f"initial state {self.initial!r} not among the states")
        unknown = self.offending - self.states
        if unknown:
            raise PolicyDefinitionError(
                f"offending states {sorted(unknown)} not among the states")
        declared = set(self.parameters) | set(self.variables)
        if len(declared) < len(self.parameters) + len(self.variables):
            raise PolicyDefinitionError(
                "parameters and variables must have distinct names")
        by_source: dict[str, list[Edge]] = {}
        for edge in self.edges:
            if edge.source not in self.states or edge.target not in self.states:
                raise PolicyDefinitionError(f"edge {edge} uses unknown states")
            allowed = declared | set(edge.pattern.binders)
            free = edge.pattern.guard.names() - allowed
            if free:
                raise PolicyDefinitionError(
                    f"guard of edge {edge} references unbound names "
                    f"{sorted(free)}")
            by_source.setdefault(edge.source, []).append(edge)
        object.__setattr__(self, "_edges_from",
                           {src: tuple(edges)
                            for src, edges in by_source.items()})

    # -- instantiation ------------------------------------------------------

    def instantiate(self, **arguments: object) -> "Policy":
        """Fix the parameters, producing an enforceable :class:`Policy`.

        Set-valued arguments are normalised to ``frozenset`` so policies
        stay hashable (they are used as framing labels).
        """
        missing = set(self.parameters) - set(arguments)
        extra = set(arguments) - set(self.parameters)
        if missing or extra:
            raise PolicyDefinitionError(
                f"instantiation of {self.name}: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}")
        normalised = tuple(
            (param, _normalise(arguments[param])) for param in self.parameters)
        return Policy(self, normalised)

    # -- runs ---------------------------------------------------------------

    def edges_from(self, state: str) -> tuple[Edge, ...]:
        """Explicit edges leaving *state*."""
        return self._edges_from.get(state, ())

    def step_concrete(self, state: str, event: Event,
                      env: Mapping[str, object]) -> frozenset[str]:
        """Successor states on *event* under a *complete* environment
        (parameters and quantified variables all bound).

        Implements the completed-automaton semantics: the union of the
        targets of all matching edges, or the implicit self-loop ``{state}``
        when no edge matches.  Offending states are absorbing.
        """
        if state in self.offending:
            return frozenset({state})
        targets: set[str] = set()
        for edge in self.edges_from(state):
            local = self._match(edge.pattern, event, env)
            if local is None:
                continue
            if edge.pattern.guard.evaluate(local):
                targets.add(edge.target)
        if not targets:
            return frozenset({state})
        return frozenset(targets)

    def _match(self, pattern: EventPattern, event: Event,
               env: Mapping[str, object]) -> dict[str, object] | None:
        """Unify *pattern* against *event* under *env*.

        Returns the environment extended with the edge-local binders on
        success, ``None`` on mismatch.
        """
        if pattern.event != event.name:
            return None
        if not pattern.binders:
            # A binder-less pattern is payload-agnostic: ``@charge``
            # matches ``charge()``, ``charge(99)``, … — the common case
            # for name-only policies such as never-after.
            return dict(env)
        if len(pattern.binders) != len(event.params):
            return None
        local = dict(env)
        for binder, payload in zip(pattern.binders, event.params):
            if binder in self.variables:
                bound = env[binder]
                if bound is STAR or bound != payload:
                    return None
            else:
                local[binder] = payload
        return local

    def to_dot(self) -> str:
        """A Graphviz rendering of the automaton."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in sorted(self.states):
            shape = "doublecircle" if state in self.offending else "circle"
            lines.append(f'  "{state}" [shape={shape}];')
        lines.append(f'  init [shape=point]; init -> "{self.initial}";')
        for edge in self.edges:
            text = str(edge.pattern).replace('"', '\\"')
            lines.append(
                f'  "{edge.source}" -> "{edge.target}" [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)


def _normalise(value: object) -> object:
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class Policy:
    """A usage automaton with its parameters fixed — the ``φ`` of framings.

    Policies compare (and hash) by automaton name and argument values, so
    the two instantiations ``φ({s1},45,100)`` and ``φ({s1,s3},40,70)`` of
    the paper's example are distinct framing labels.
    """

    automaton: UsageAutomaton = field(compare=False, repr=False)
    arguments: tuple[tuple[str, object], ...] = ()
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key",
                           (self.automaton.name, self.arguments))

    @property
    def name(self) -> str:
        """The automaton (schema) name."""
        return self.automaton.name

    def environment(self) -> dict[str, object]:
        """The parameter environment of this instantiation."""
        return dict(self.arguments)

    # -- trace checking -----------------------------------------------------

    def accepts(self, trace: Sequence[Event]) -> bool:
        """True iff *trace* is accepted, i.e. **violates** the policy
        (default-allow: the automaton recognises the forbidden traces)."""
        runner = self.runner()
        for event in trace:
            runner.step(event)
        return runner.in_violation

    def respects(self, trace: Sequence[Event]) -> bool:
        """True iff *trace* respects the policy (``trace ⊨ φ``)."""
        return not self.accepts(trace)

    def first_violation(self, trace: Sequence[Event]) -> int | None:
        """Index of the event whose firing first violates the policy, or
        ``None`` if the whole trace is respected."""
        runner = self.runner()
        for index, event in enumerate(trace):
            runner.step(event)
            if runner.in_violation:
                return index
        return None

    def runner(self) -> "PolicyRunner":
        """A fresh incremental runner for this policy."""
        return PolicyRunner(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __str__(self) -> str:
        if not self.arguments:
            return self.name
        rendered = []
        for _, value in self.arguments:
            if isinstance(value, frozenset):
                inner = ",".join(str(v) for v in sorted(value, key=str))
                rendered.append("{" + inner + "}")
            else:
                rendered.append(str(value))
        return f"{self.name}({','.join(rendered)})"


class PolicyRunner:
    """Exact incremental evaluation of a policy over a growing trace.

    For automata with quantified variables the runner maintains one
    state-set per assignment of the variables to *witnesses*: values seen
    in the trace so far, or the sentinel :data:`STAR` ("any value not in
    the trace").  When a fresh value arrives, every assignment with STAR
    coordinates forks — the fork's past run is provably identical to the
    STAR run, because a variable bound to a value matches no event before
    that value first occurs.

    This realises, incrementally and exactly, the finite instantiation
    argument of [3] used to make usage automata model-checkable.
    """

    __slots__ = ("policy", "_automaton", "_params", "_table", "_seen",
                 "_violated")

    def __init__(self, policy: Policy) -> None:
        self.policy = policy
        self._automaton = policy.automaton
        self._params = policy.environment()
        variables = self._automaton.variables
        initial_sigma = tuple((var, STAR) for var in variables)
        self._table: dict[tuple, frozenset[str]] = {
            initial_sigma: frozenset({self._automaton.initial})}
        self._seen: set[object] = set()
        self._violated = False

    @property
    def in_violation(self) -> bool:
        """True iff the trace consumed so far violates the policy."""
        return self._violated

    def step(self, event: Event) -> bool:
        """Consume one event; returns :attr:`in_violation` afterwards."""
        self._fork_for_new_values(event)
        automaton = self._automaton
        offending = automaton.offending
        new_table: dict[tuple, frozenset[str]] = {}
        for sigma, states in self._table.items():
            env = dict(self._params)
            env.update(sigma)
            successors: set[str] = set()
            for state in states:
                successors |= automaton.step_concrete(state, event, env)
            if successors & offending:
                self._violated = True
            new_table[sigma] = frozenset(successors)
        self._table = new_table
        return self._violated

    def _fork_for_new_values(self, event: Event) -> None:
        fresh = [value for value in event.params
                 if value not in self._seen]
        for value in fresh:
            if value in self._seen:
                continue
            self._seen.add(value)
            additions: dict[tuple, frozenset[str]] = {}
            for sigma, states in self._table.items():
                star_positions = [i for i, (_, val) in enumerate(sigma)
                                  if val is STAR]
                for size in range(1, len(star_positions) + 1):
                    for combo in itertools.combinations(star_positions, size):
                        forked = list(sigma)
                        for position in combo:
                            var, _ = forked[position]
                            forked[position] = (var, value)
                        additions[tuple(forked)] = states
            self._table.update(additions)

    def current_states(self) -> dict[tuple, frozenset[str]]:
        """The internal table (assignment → automaton states); exposed for
        white-box tests and debugging."""
        return dict(self._table)

    def fork(self) -> "PolicyRunner":
        """An independent runner starting from this runner's exact state.

        O(table) — the table values are immutable frozensets, so a shallow
        copy suffices.  Stepping the fork never affects the original (and
        vice versa): this is the supported way to probe "what would this
        event do" or to snapshot runners while exploring branching runs,
        instead of replaying the whole event history into a fresh runner.
        """
        clone = PolicyRunner.__new__(PolicyRunner)
        clone.policy = self.policy
        clone._automaton = self._automaton
        clone._params = self._params  # never mutated after __init__
        clone._table = dict(self._table)
        clone._seen = set(self._seen)
        clone._violated = self._violated
        return clone

    def freeze(self) -> "FrozenRunnerState":
        """A hashable snapshot of the runner, for use as (part of) a model
        checker state."""
        return FrozenRunnerState(
            table=frozenset(self._table.items()),
            seen=frozenset(self._seen),
            violated=self._violated)

    @classmethod
    def from_frozen(cls, policy: Policy,
                    frozen: "FrozenRunnerState") -> "PolicyRunner":
        """Rebuild a runner from a :meth:`freeze` snapshot."""
        runner = cls(policy)
        runner._table = dict(frozen.table)
        runner._seen = set(frozen.seen)
        runner._violated = frozen.violated
        return runner


@dataclass(frozen=True)
class FrozenRunnerState:
    """An immutable snapshot of a :class:`PolicyRunner`.

    The witness table is a ``frozenset`` of (assignment, states) pairs, so
    snapshots hash identically regardless of insertion order — exactly
    what the abstract state of the security model checker needs.
    """

    table: frozenset
    seen: frozenset
    violated: bool


def assignments(variables: Sequence[str], universe: Iterable[object]
                ) -> Iterable[dict[str, object]]:
    """All assignments of *variables* to *universe* ∪ {STAR}.

    The eager enumeration used by the declarative (non-incremental)
    checker; exported for tests that cross-validate the runner.
    """
    pool = list(universe) + [STAR]
    for values in itertools.product(pool, repeat=len(variables)):
        yield dict(zip(variables, values))

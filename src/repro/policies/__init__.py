"""Usage automata and security policies (Figure 1 of the paper; ref. [3]).

Policies are parametric finite-state automata in the default-allow style:
the automaton accepts exactly the forbidden histories.  This package
provides the automaton engine (:mod:`repro.policies.usage_automata`), the
declarative guard language (:mod:`repro.policies.guards`), a fluent
builder (:mod:`repro.policies.builder`) and a library of ready-made
policy schemas including the paper's hotel policy
(:mod:`repro.policies.library`).
"""

from repro.policies.builder import AutomatonBuilder
from repro.policies.library import (at_most, blacklist, chinese_wall,
                                    forbid, hotel_policy,
                                    hotel_policy_automaton, never_after,
                                    require_before)
from repro.policies.usage_automata import (Edge, EventPattern, Policy,
                                           PolicyRunner, UsageAutomaton)

__all__ = [
    "AutomatonBuilder", "at_most", "blacklist", "chinese_wall", "forbid",
    "hotel_policy", "hotel_policy_automaton", "never_after",
    "require_before", "Edge", "EventPattern", "Policy", "PolicyRunner",
    "UsageAutomaton",
]

"""A library of reusable usage-automata schemas.

Contains the paper's Figure 1 automaton (:func:`hotel_policy_automaton`)
and a collection of classic usage policies (never-after, blacklists,
bounded use, Chinese wall) used by the examples, tests and benchmarks.
"""

from __future__ import annotations

from repro.policies.builder import AutomatonBuilder
from repro.policies.guards import ge, gt, le, lt, member, not_member
from repro.policies.usage_automata import Policy, UsageAutomaton


def hotel_policy_automaton() -> UsageAutomaton:
    """The usage automaton ``φ(bl, p, t)`` of Figure 1.

    Parameters: a black list ``bl`` of hotels, a price threshold ``p`` and
    a Trip-Advisor rating threshold ``t``.  The policy is violated when

    * a black-listed hotel signs the contract (``αsgn(x)`` with
      ``x ∈ bl``), or
    * the selected hotel publishes a price above ``p`` **and** then a
      rating below ``t``.

    States ``q4``/``q5`` are the all-is-well sinks of the figure; ``q6``
    is the offending state; unmatched events take the implicit ``*``
    self-loops.
    """
    return (AutomatonBuilder("phi", parameters=("bl", "p", "t"))
            .state("q1", initial=True)
            .state("q6", offending=True)
            .edge("q1", "q2", "sgn", binders=("x",),
                  guard=not_member("x", "bl"))
            .edge("q1", "q6", "sgn", binders=("x",),
                  guard=member("x", "bl"))
            .edge("q2", "q4", "p", binders=("y",), guard=le("y", "p"))
            .edge("q2", "q3", "p", binders=("y",), guard=gt("y", "p"))
            .edge("q3", "q5", "ta", binders=("z",), guard=ge("z", "t"))
            .edge("q3", "q6", "ta", binders=("z",), guard=lt("z", "t"))
            .build())


def hotel_policy(blacklist: frozenset | set, price: float,
                 rating: float) -> Policy:
    """``φ(bl, p, t)`` instantiated — e.g. the paper's
    ``φ({s1}, 45, 100)`` for client ``C1`` and ``φ({s1,s3}, 40, 70)`` for
    ``C2``."""
    return hotel_policy_automaton().instantiate(
        bl=frozenset(blacklist), p=price, t=rating)


def never_after_automaton(first: str, then: str,
                          same_resource: bool = False) -> UsageAutomaton:
    """"Never *then* after *first*" — e.g. never write after read.

    With ``same_resource=True`` both events carry one payload and the ban
    applies per-resource through the quantified variable ``x`` (the full
    usage-automata semantics of [3]); otherwise the events are matched by
    name only.
    """
    if same_resource:
        builder = AutomatonBuilder(f"never_{then}_after_{first}",
                                   variables=("x",))
        return (builder
                .state("q0", initial=True)
                .state("bad", offending=True)
                .edge("q0", "q1", first, binders=("x",))
                .edge("q1", "bad", then, binders=("x",))
                .build())
    builder = AutomatonBuilder(f"never_{then}_after_{first}")
    return (builder
            .state("q0", initial=True)
            .state("bad", offending=True)
            .edge("q0", "q1", first)
            .edge("q1", "bad", then)
            .build())


def never_after(first: str, then: str,
                same_resource: bool = False) -> Policy:
    """Instantiated form of :func:`never_after_automaton` (no
    parameters)."""
    return never_after_automaton(first, then, same_resource).instantiate()


def forbid_automaton(event: str) -> UsageAutomaton:
    """Firing *event* at all violates the policy."""
    return (AutomatonBuilder(f"forbid_{event}")
            .state("q0", initial=True)
            .state("bad", offending=True)
            .edge("q0", "bad", event)
            .build())


def forbid(event: str) -> Policy:
    """Instantiated form of :func:`forbid_automaton`."""
    return forbid_automaton(event).instantiate()


def blacklist_automaton(event: str) -> UsageAutomaton:
    """``event(x)`` with ``x`` in the parameter set ``bl`` is forbidden."""
    return (AutomatonBuilder(f"blacklist_{event}", parameters=("bl",))
            .state("q0", initial=True)
            .state("bad", offending=True)
            .edge("q0", "bad", event, binders=("x",),
                  guard=member("x", "bl"))
            .build())


def blacklist(event: str, banned: frozenset | set) -> Policy:
    """Instantiated form of :func:`blacklist_automaton`."""
    return blacklist_automaton(event).instantiate(bl=frozenset(banned))


def at_most_automaton(event: str, bound: int) -> UsageAutomaton:
    """At most *bound* occurrences of *event* are allowed."""
    if bound < 0:
        raise ValueError("bound must be non-negative")
    builder = AutomatonBuilder(f"at_most_{bound}_{event}")
    builder.state("c0", initial=True)
    builder.state("bad", offending=True)
    for count in range(bound):
        builder.edge(f"c{count}", f"c{count + 1}", event)
    builder.edge(f"c{bound}", "bad", event)
    return builder.build()


def at_most(event: str, bound: int) -> Policy:
    """Instantiated form of :func:`at_most_automaton`."""
    return at_most_automaton(event, bound).instantiate()


def require_before_automaton(prerequisite: str, action: str) -> UsageAutomaton:
    """*action* may only be fired after *prerequisite* has been fired."""
    return (AutomatonBuilder(f"require_{prerequisite}_before_{action}")
            .state("locked", initial=True)
            .state("bad", offending=True)
            .edge("locked", "unlocked", prerequisite)
            .edge("locked", "bad", action)
            .build())


def require_before(prerequisite: str, action: str) -> Policy:
    """Instantiated form of :func:`require_before_automaton`."""
    return require_before_automaton(prerequisite, action).instantiate()


def chinese_wall_automaton(access: str) -> UsageAutomaton:
    """The Chinese-wall policy over ``access(dataset)``: once dataset
    ``d1`` has been touched, no *different* dataset ``d2`` may be.

    Uses two quantified variables, exercising the multi-variable witness
    machinery of the runner.
    """
    from repro.policies.guards import ne
    return (AutomatonBuilder(f"chinese_wall_{access}",
                             variables=("d1", "d2"))
            .state("q0", initial=True)
            .state("bad", offending=True)
            .edge("q0", "q1", access, binders=("d1",))
            .edge("q1", "bad", access, binders=("d2",),
                  guard=ne("d1", "d2"))
            .build())


def chinese_wall(access: str) -> Policy:
    """Instantiated form of :func:`chinese_wall_automaton`."""
    return chinese_wall_automaton(access).instantiate()

"""Guard expressions for usage-automata edges.

Edges of a usage automaton (Figure 1 of the paper) carry guards such as
``x ∉ bl``, ``y ≤ p`` or ``z < t``, relating the value bound by the edge to
the *parameters* of the policy (the black list ``bl`` and the thresholds
``p`` and ``t`` in the hotel example).

Guards are a small declarative expression language — not raw Python
callables — so that policies can be printed, compared, serialised and
instantiated symbolically.  They evaluate against an *environment* mapping
names (policy parameters, quantified variables and edge-local binders) to
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import PolicyDefinitionError


class Guard:
    """Abstract base class of guard expressions."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, object]) -> bool:
        """Truth value of the guard under *env*."""
        raise NotImplementedError

    def names(self) -> frozenset[str]:
        """All names referenced by the guard."""
        raise NotImplementedError

    def __and__(self, other: "Guard") -> "Guard":
        return And(self, other)

    def __or__(self, other: "Guard") -> "Guard":
        return Or(self, other)

    def __invert__(self) -> "Guard":
        return Not(self)


class Term:
    """Abstract base class of guard *terms* (the operands of comparisons)."""

    __slots__ = ()

    def value(self, env: Mapping[str, object]) -> object:
        """The value denoted by the term under *env*."""
        raise NotImplementedError

    def names(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Const(Term):
    """A literal constant."""

    constant: object

    def value(self, env: Mapping[str, object]) -> object:
        return self.constant

    def names(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return repr(self.constant)


@dataclass(frozen=True, slots=True)
class Name(Term):
    """A reference to a policy parameter, quantified variable or binder."""

    name: str

    def value(self, env: Mapping[str, object]) -> object:
        try:
            return env[self.name]
        except KeyError:
            raise PolicyDefinitionError(
                f"guard references unbound name {self.name!r}") from None

    def names(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


def _as_term(value: object) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Name(value)
    return Const(value)


@dataclass(frozen=True, slots=True)
class Compare(Guard):
    """A binary comparison ``left op right`` with ``op`` one of
    ``== != < <= > >= in notin``."""

    op: str
    left: Term
    right: Term

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "in": lambda a, b: a in b,
        "notin": lambda a, b: a not in b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PolicyDefinitionError(f"unknown comparison {self.op!r}")

    def evaluate(self, env: Mapping[str, object]) -> bool:
        """Truth value under *env*.

        Comparisons between incomparable values (e.g. ordering a string
        payload against a numeric threshold) evaluate to ``False`` rather
        than raising: a guard that cannot hold simply does not match, so
        heterogeneous event payloads never crash a monitor.
        """
        try:
            return self._OPS[self.op](self.left.value(env),
                                      self.right.value(env))
        except TypeError:
            return False

    def names(self) -> frozenset[str]:
        return self.left.names() | self.right.names()

    def __str__(self) -> str:
        op = {"notin": "not in"}.get(self.op, self.op)
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True, slots=True)
class And(Guard):
    """Conjunction of two guards."""

    left: Guard
    right: Guard

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return self.left.evaluate(env) and self.right.evaluate(env)

    def names(self) -> frozenset[str]:
        return self.left.names() | self.right.names()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, slots=True)
class Or(Guard):
    """Disjunction of two guards."""

    left: Guard
    right: Guard

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return self.left.evaluate(env) or self.right.evaluate(env)

    def names(self) -> frozenset[str]:
        return self.left.names() | self.right.names()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True, slots=True)
class Not(Guard):
    """Negation of a guard."""

    operand: Guard

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return not self.operand.evaluate(env)

    def names(self) -> frozenset[str]:
        return self.operand.names()

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True, slots=True)
class TrueGuard(Guard):
    """The always-true guard (unguarded edges)."""

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return True

    def names(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


#: Shared instance of the trivial guard.
TRUE = TrueGuard()


# -- concise constructors ---------------------------------------------------

def eq(left: object, right: object) -> Compare:
    """``left == right``."""
    return Compare("==", _as_term(left), _as_term(right))


def ne(left: object, right: object) -> Compare:
    """``left != right``."""
    return Compare("!=", _as_term(left), _as_term(right))


def lt(left: object, right: object) -> Compare:
    """``left < right``."""
    return Compare("<", _as_term(left), _as_term(right))


def le(left: object, right: object) -> Compare:
    """``left <= right``."""
    return Compare("<=", _as_term(left), _as_term(right))


def gt(left: object, right: object) -> Compare:
    """``left > right``."""
    return Compare(">", _as_term(left), _as_term(right))


def ge(left: object, right: object) -> Compare:
    """``left >= right``."""
    return Compare(">=", _as_term(left), _as_term(right))


def member(left: object, right: object) -> Compare:
    """``left ∈ right``."""
    return Compare("in", _as_term(left), _as_term(right))


def not_member(left: object, right: object) -> Compare:
    """``left ∉ right``."""
    return Compare("notin", _as_term(left), _as_term(right))

"""A fluent builder for usage automata.

Writing :class:`~repro.policies.usage_automata.UsageAutomaton` literals is
verbose; the builder lets policy definitions read close to the paper's
figures::

    phi = (AutomatonBuilder("phi", parameters=("bl", "p", "t"))
           .state("q1", initial=True)
           .state("q2").state("q3").state("q4").state("q5")
           .state("q6", offending=True)
           .edge("q1", "q2", "sgn", binders=("x",), guard=not_member("x", "bl"))
           .edge("q1", "q6", "sgn", binders=("x",), guard=member("x", "bl"))
           ...
           .build())

States referenced by edges are added implicitly, so most ``state`` calls
can be omitted.
"""

from __future__ import annotations

from repro.core.errors import PolicyDefinitionError
from repro.policies.guards import TRUE, Guard
from repro.policies.usage_automata import Edge, EventPattern, UsageAutomaton


class AutomatonBuilder:
    """Accumulates states and edges, then builds a validated automaton."""

    def __init__(self, name: str, parameters: tuple[str, ...] = (),
                 variables: tuple[str, ...] = ()) -> None:
        self._name = name
        self._parameters = tuple(parameters)
        self._variables = tuple(variables)
        self._states: set[str] = set()
        self._initial: str | None = None
        self._offending: set[str] = set()
        self._edges: list[Edge] = []

    def state(self, name: str, initial: bool = False,
              offending: bool = False) -> "AutomatonBuilder":
        """Declare a state; flags mark it initial and/or offending."""
        self._states.add(name)
        if initial:
            if self._initial is not None and self._initial != name:
                raise PolicyDefinitionError(
                    f"two initial states: {self._initial!r} and {name!r}")
            self._initial = name
        if offending:
            self._offending.add(name)
        return self

    def edge(self, source: str, target: str, event: str,
             binders: tuple[str, ...] = (),
             guard: Guard = TRUE) -> "AutomatonBuilder":
        """Add the transition ``source --@event(binders) when guard--> target``.

        Unknown states are declared implicitly (non-initial,
        non-offending)."""
        self._states.add(source)
        self._states.add(target)
        self._edges.append(
            Edge(source, EventPattern(event, tuple(binders), guard), target))
        return self

    def build(self) -> UsageAutomaton:
        """Validate and return the automaton."""
        if self._initial is None:
            raise PolicyDefinitionError(
                f"automaton {self._name!r} has no initial state")
        return UsageAutomaton(
            name=self._name,
            states=frozenset(self._states),
            initial=self._initial,
            offending=frozenset(self._offending),
            edges=tuple(self._edges),
            parameters=self._parameters,
            variables=self._variables,
        )

"""Whole-network orchestration under capacity constraints.

:func:`repro.analysis.verification.verify_network` treats clients
independently, which is exactly right under the paper's
replicate-at-will assumption.  Once services declare capacities
(:mod:`repro.analysis.capacity`), per-client choices interact: two
clients may each have a valid plan that routes through the same
capacity-1 service.  The orchestrator searches the *product* of the
per-client valid-plan sets for a vector whose combined concurrent
demand fits every capacity, backtracking over alternatives.

Optionally a :class:`~repro.quantitative.costs.CostModel` prices the
vectors, and the search returns the cheapest feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.capacity import static_concurrent_demand
from repro.analysis.planner import PlanAnalysis, find_valid_plans
from repro.core.plans import PlanVector
from repro.core.syntax import HistoryExpression
from repro.network.repository import Repository


@dataclass(frozen=True)
class Orchestration:
    """A feasible assignment of valid plans to all clients."""

    locations: tuple[str, ...]
    plans: tuple[PlanAnalysis, ...]
    cost: float | None = None

    def plan_vector(self) -> PlanVector:
        """The vector ``~π`` in client order."""
        return PlanVector(tuple(analysis.plan for analysis in self.plans))

    def __str__(self) -> str:
        parts = [f"{location}: {analysis.plan}"
                 for location, analysis in zip(self.locations, self.plans)]
        suffix = "" if self.cost is None else f"  (cost {self.cost:g})"
        return "; ".join(parts) + suffix


@dataclass(frozen=True)
class OrchestrationResult:
    """Outcome of the constrained search."""

    orchestration: Orchestration | None
    clients_without_plans: tuple[str, ...] = ()
    vectors_tried: int = 0

    @property
    def feasible(self) -> bool:
        return self.orchestration is not None


def orchestrate(clients: Mapping[str, HistoryExpression],
                repository: Repository,
                capacities: Mapping[str, int | None] | None = None,
                cost_model=None,
                max_plans: int | None = None) -> OrchestrationResult:
    """Find a capacity-feasible vector of valid plans for *clients*.

    1. Synthesise each client's valid plans (Section 5, unchanged).
    2. Backtrack over the product of the per-client choices, pruning as
       soon as a partial vector oversubscribes some capacity (demand is
       monotone in the set of chosen plans, so pruning is sound).
    3. With a *cost_model*, explore every feasible vector and keep the
       cheapest (worst-case session cost, summed over clients);
       otherwise return the first feasible vector.
    """
    capacities = dict(capacities or {})
    locations = tuple(clients)

    candidate_sets: list[tuple[PlanAnalysis, ...]] = []
    without: list[str] = []
    for location, term in clients.items():
        result = find_valid_plans(term, repository, location=location,
                                  max_plans=max_plans)
        if not result.valid_plans:
            without.append(location)
        candidate_sets.append(tuple(result.valid_plans))
    if without:
        return OrchestrationResult(None, tuple(without))

    if cost_model is not None:
        from repro.quantitative.planning import plan_cost
        priced: list[tuple[tuple[PlanAnalysis, float], ...]] = []
        for location, term, options in zip(locations, clients.values(),
                                           candidate_sets):
            priced.append(tuple(
                (analysis, plan_cost(term, analysis.plan, repository,
                                     cost_model, location))
                for analysis in options))
    else:
        priced = [tuple((analysis, 0.0) for analysis in options)
                  for options in candidate_sets]

    constrained = {location: cap for location, cap in capacities.items()
                   if cap is not None}

    best: Orchestration | None = None
    best_cost = float("inf")
    tried = 0
    terms = tuple(clients.values())

    def demand_fits(chosen: list[tuple[PlanAnalysis, float]]) -> bool:
        vector = [(terms[i], analysis.plan)
                  for i, (analysis, _) in enumerate(chosen)]
        for location, capacity in constrained.items():
            if static_concurrent_demand(vector, repository,
                                        location) > capacity:
                return False
        return True

    def search(position: int, chosen: list, running_cost: float) -> None:
        nonlocal best, best_cost, tried
        if running_cost >= best_cost:
            return
        if position == len(priced):
            tried += 1
            candidate = Orchestration(
                locations,
                tuple(analysis for analysis, _ in chosen),
                running_cost if cost_model is not None else None)
            if running_cost < best_cost:
                best, best_cost = candidate, running_cost
            return
        for analysis, cost in priced[position]:
            chosen.append((analysis, cost))
            if demand_fits(chosen):
                search(position + 1, chosen, running_cost + cost)
            chosen.pop()
            if best is not None and cost_model is None:
                return  # first feasible vector suffices

    search(0, [], 0.0)
    return OrchestrationResult(best, (), tried)

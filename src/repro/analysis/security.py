"""Static security checking: model checking validity over assembled LTSs.

Section 3.1 reduces validity of the assembled service ``Ĥ`` to a model
checking problem.  Here the assembled behaviour is the session-product
LTS (:mod:`repro.analysis.session_product`); the checker walks its
reachable states paired with an *abstract monitor state*:

* one :class:`~repro.policies.usage_automata.PolicyRunner` per policy
  occurring anywhere in the system — every runner consumes every event,
  whether or not its policy is active, because validity is history
  dependent (a framing opened later judges the whole past);
* the multiset of currently active policies (activation counts).

Runner states are finite (the witness table ranges over the finitely many
event payloads of the system) and activation counts are bounded (framings
are syntactically nested and recursion is tail), so the product is a
finite safety check: a state is *bad* when some active policy's runner is
in violation.  This mirrors the paper's reduction of both security and
compliance to safety properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.errors import StateSpaceLimitError
from repro.policies.usage_automata import (FrozenRunnerState, Policy,
                                           PolicyRunner)
from repro.contracts.lts import LTS
from repro.analysis.session_product import ProductLabel

#: Default bound on explored (tree, monitor) product states.
DEFAULT_PRODUCT_LIMIT = 500_000

#: Abstract monitor state: per-policy frozen runner + activation count.
MonitorState = tuple[tuple[Policy, FrozenRunnerState, int], ...]


@dataclass(frozen=True)
class SecurityReport:
    """Outcome of the security model checking.

    On failure, ``counterexample`` is the sequence of product labels of a
    shortest trace leading to a violation and ``violated_policy`` the
    policy whose automaton accepted the flattened history.

    ``skipped`` marks a report produced without model checking — the
    memoized planner prunes the (expensive) security pass for plans
    already invalidated by a failed compliance check; such a report is
    vacuously ``secure`` and checked zero states.
    """

    secure: bool
    states_checked: int
    counterexample: tuple[ProductLabel, ...] | None = None
    violated_policy: Policy | None = None
    skipped: bool = False

    @staticmethod
    def skipped_report() -> "SecurityReport":
        """The placeholder report for a pruned (never-run) security pass."""
        return SecurityReport(True, 0, skipped=True)

    def history_labels(self) -> tuple:
        """The history ``η`` of the counterexample trace: the appended
        labels of every product label, flattened in order.  Empty when the
        check passed (there is no counterexample to flatten)."""
        if self.counterexample is None:
            return ()
        return tuple(item
                     for label in self.counterexample
                     for item in label.appends)

    def __bool__(self) -> bool:
        return self.secure


def check_security(lts: LTS, policies: frozenset[Policy] | None = None,
                   max_states: int = DEFAULT_PRODUCT_LIMIT
                   ) -> SecurityReport:
    """Model-check that every trace of *lts* produces a valid history.

    *policies* defaults to every policy mentioned by the LTS labels; pass
    the full policy set of the system if framings may reference policies
    that no explored label mentions (they cannot, in practice: a policy
    matters only once a ``Lφ`` occurs).
    """
    if policies is None:
        policies = _policies_of(lts)
    initial = (lts.initial, fresh_monitor_state(policies))

    from collections import deque
    seen = {initial}
    frontier = deque([(initial, ())])
    states_checked = 0

    while frontier:
        (tree_state, monitor_state), path = frontier.popleft()
        states_checked += 1
        for label, successor in lts.moves(tree_state):
            next_monitor, violated = advance_monitor(monitor_state,
                                                     label.appends)
            new_path = path + (label,)
            if violated is not None:
                return SecurityReport(False, states_checked,
                                      counterexample=new_path,
                                      violated_policy=violated)
            next_state = (successor, next_monitor)
            if next_state not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "security product")
                seen.add(next_state)
                frontier.append((next_state, new_path))
    return SecurityReport(True, states_checked)


def fresh_monitor_state(policies) -> MonitorState:
    """The initial abstract monitor over *policies* (sorted by rendering,
    so monitor states are canonical): every runner fresh, nothing active.

    Shared with :mod:`repro.staticcheck.validity`, which runs the same
    abstract monitor over the residuals of a single history expression
    instead of an assembled session product.
    """
    return tuple((policy, PolicyRunner(policy).freeze(), 0)
                 for policy in sorted(policies, key=str))


def advance_monitor(monitor_state: MonitorState,
                    appends: tuple) -> tuple[MonitorState, Policy | None]:
    """Advance the abstract monitor by the appended history labels.

    Returns ``(new_state, violated_policy_or_None)``; returns the input
    unchanged (wrapped) when *appends* is empty.
    """
    if not appends:
        return monitor_state, None

    runners = {policy: PolicyRunner.from_frozen(policy, frozen)
               for policy, frozen, _ in monitor_state}
    active = {policy: count for policy, _, count in monitor_state}
    order = [policy for policy, _, _ in monitor_state]

    for label in appends:
        if isinstance(label, Event):
            for policy in order:
                runners[policy].step(label)
                if active[policy] > 0 and runners[policy].in_violation:
                    return _freeze(order, runners, active), policy
        elif isinstance(label, FrameOpen):
            policy = label.policy
            if policy not in runners:
                # A policy unseen at initialisation (defensive): start it
                # from scratch — with no past events its history is empty.
                runners[policy] = PolicyRunner(policy)
                active[policy] = 0
                order.append(policy)
            active[policy] += 1
            if runners[policy].in_violation:
                return _freeze(order, runners, active), policy
        elif isinstance(label, FrameClose):
            policy = label.policy
            if policy in active and active[policy] > 0:
                active[policy] -= 1
        else:  # pragma: no cover - appends only hold history labels
            raise TypeError(f"unexpected history label {label!r}")
    return _freeze(order, runners, active), None


def _freeze(order, runners, active) -> MonitorState:
    return tuple((policy, runners[policy].freeze(), active[policy])
                 for policy in order)


def _policies_of(lts: LTS) -> frozenset[Policy]:
    policies: set[Policy] = set()
    for moves in lts.transitions.values():
        for label, _ in moves:
            for item in label.appends:
                if isinstance(item, (FrameOpen, FrameClose)):
                    policies.add(item.policy)
    return frozenset(policies)

"""The assembled behaviour of one client under a plan.

Section 3.1 of the paper: "the idea is to suitably assemble the history
expressions H, H', H'', … recording in a plan for H which service to
invoke for each request, so obtaining the pair ⟨Ĥ, π⟩".

Rather than assembling a syntactic history expression (whose interleaving
of client and service activity would have to be encoded with an auxiliary
shuffle operator), we assemble the *transition system* of the composition
directly, by running the network semantics of a single component with the
validity filter off.  States are session trees; labels carry the rule,
the underlying action and the history labels the move appends.  This is
exact: the component's reachable histories are precisely the label
sequences of this LTS.

The assembled LTS is what both halves of the static analysis consume:

* the security checker of :mod:`repro.analysis.security` verifies that
  every trace yields a valid history;
* deadlocked states (non-terminated trees without moves) witness missing
  communications — the whole-system counterpart of non-compliance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import HistoryLabel, Label
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.network.config import (Leaf, SessionTree,
                                  is_successfully_terminated)
from repro.network.repository import Repository
from repro.network.semantics import tree_moves
from repro.contracts.lts import LTS, build_lts


@dataclass(frozen=True, slots=True)
class ProductLabel:
    """A label of the assembled LTS: the network rule that fired, the
    underlying action, and the history labels appended by the move."""

    rule: str
    action: Label
    appends: tuple[HistoryLabel, ...] = ()

    def __str__(self) -> str:
        if self.appends:
            inner = "·".join(str(label) for label in self.appends)
            return f"{self.rule}:{inner}"
        return f"{self.rule}:{self.action}"


#: The LTS type of assembled client behaviours.
SessionLTS = LTS[SessionTree, ProductLabel]


def assemble(client: HistoryExpression, plan: Plan,
             repository: Repository, location: str = "client",
             max_states: int = 200_000,
             commit_outputs: bool = True) -> SessionLTS:
    """The assembled LTS of *client* running at *location* under *plan*.

    Unserved requests (no plan binding / unknown location) simply produce
    no ``open`` move, which leaves the tree deadlocked there — the
    deadlock detection then reports the incomplete plan.

    *commit_outputs* (default on) includes the demonic
    output-commitment steps, so :func:`deadlocked_trees` sees the stuck
    states caused by unhandleable internal choices; the commitment steps
    append no history labels, so the security check is unaffected either
    way.
    """

    def successors(tree: SessionTree):
        for move in tree_moves(tree, plan, repository, commit_outputs):
            if not move.is_internal():
                continue
            yield ProductLabel(move.kind, move.label, move.appends), move.tree

    return build_lts(Leaf(location, client), successors,
                     max_states=max_states)


def deadlocked_trees(lts: SessionLTS) -> frozenset[SessionTree]:
    """Reachable trees with no move that are not successfully terminated.

    Each such tree is a reachable configuration in which the client (or a
    service acting for it) waits forever: an output nobody accepts, an
    input nobody sends, or a request the plan does not serve.
    """
    return frozenset(tree for tree in lts.deadlocks()
                     if not is_successfully_terminated(tree))


def is_unfailing(lts: SessionLTS) -> bool:
    """True iff no reachable deadlocked (non-terminated) tree exists."""
    return not deadlocked_trees(lts)

"""Human-readable explanations of analysis verdicts.

The deciders return machine-oriented witnesses — product-state traces,
label paths, violated policies.  This module turns them into the
narratives an engineer debugging a service composition actually needs:

* *why are these two services not compliant?* — the synchronisation
  path to the stuck pair plus what each side offered there;
* *why is this plan insecure?* — the event/framing trace to the policy
  violation, with the offending policy and the history prefix that
  breaks it;
* *why is this plan invalid?* — the above, per failed check, in one
  report (also exposed as ``repro explain`` on the command line).
"""

from __future__ import annotations

from repro.core.actions import is_output
from repro.core.compliance import ComplianceResult, check_compliance
from repro.core.ready_sets import ready_sets
from repro.core.semantics import is_terminated
from repro.core.syntax import HistoryExpression
from repro.lang.pretty import pretty
from repro.analysis.planner import PlanAnalysis
from repro.analysis.security import SecurityReport


def explain_compliance(result: ComplianceResult) -> str:
    """A narrative for a compliance verdict."""
    if result.compliant:
        text = "compliant: every interaction can progress to completion."
        if result.explored_states is not None:
            text += (f" ({result.explored_states} product state(s) "
                     "explored)")
        return text
    assert result.witness is not None and result.trace is not None
    client_state, server_state = result.witness
    lines = [f"NOT compliant: the session can get stuck after "
             f"{len(result.trace) - 1} synchronisation(s)."]
    if len(result.trace) > 1:
        lines.append("path to the stuck configuration:")
        for step, (client, server) in enumerate(result.trace[:-1]):
            lines.append(f"  {step}: client ⟨{pretty(client)}⟩ / "
                         f"server ⟨{pretty(server)}⟩")
    lines.append("stuck pair:")
    lines.append(f"  client: {pretty(client_state)}")
    lines.append(f"  server: {pretty(server_state)}")
    lines.append(_stuck_reason(client_state, server_state))
    if result.explored_states is not None:
        lines.append(f"({result.explored_states} product state(s) "
                     "explored before the verdict)")
    return "\n".join(lines)


def _stuck_reason(client_state: HistoryExpression,
                  server_state: HistoryExpression) -> str:
    """Pin down which of conditions (i)/(ii) of Definition 5 failed."""
    client_sets = ready_sets(client_state)
    server_sets = ready_sets(server_state)
    client_actions = frozenset().union(*client_sets)
    server_actions = frozenset().union(*server_sets)
    client_outputs = {a for a in client_actions if is_output(a)}
    server_outputs = {a for a in server_actions if is_output(a)}

    if is_terminated(server_state) and not is_terminated(client_state):
        return ("reason: the server has terminated while the client "
                "still expects to interact.")
    if not client_outputs and not server_outputs:
        return ("reason: both participants wait for input — a deadlock "
                "(condition (i) of Definition 5 fails).")
    unmatched = []
    for action in client_outputs:
        if not any(_co_in(action, s) for s in server_sets):
            unmatched.append(f"client output {action}")
    for action in server_outputs:
        if not any(_co_in(action, s) for s in client_sets):
            unmatched.append(f"server output {action}")
    if unmatched:
        return ("reason: " + "; ".join(unmatched)
                + " has no matching input on the other side "
                  "(condition (ii) of Definition 5 fails).")
    return "reason: the participants' ready sets cannot synchronise."


def _co_in(action, ready_set) -> bool:
    from repro.core.actions import co
    return co(action) in ready_set


def explain_security(report: SecurityReport) -> str:
    """A narrative for a security verdict."""
    if report.secure:
        return ("secure: no reachable trace violates an active policy "
                f"({report.states_checked} abstract states checked).")
    assert report.counterexample is not None
    lines = [f"INSECURE: policy {report.violated_policy} can be "
             "violated."]
    lines.append("shortest violating trace:")
    history: list[str] = []
    for label in report.counterexample:
        rendered = str(label)
        lines.append(f"  {rendered}")
        for item in label.appends:
            history.append(str(item))
    lines.append("history at the violation: "
                 + ("·".join(history) if history else "ε"))
    return "\n".join(lines)


def explain_plan(analysis: PlanAnalysis,
                 planner_metrics: dict | None = None) -> str:
    """A full narrative for a plan analysis.

    *planner_metrics* (the :class:`~repro.analysis.planner.PlannerResult`
    ``metrics`` dict, when the caller ran a whole planning pass) adds a
    summary of memoisation hits and pruned plans to the narrative.
    """
    lines = [f"plan {analysis.plan}:"]
    if analysis.valid:
        lines.append("  VALID — secure and unfailing; the run-time "
                     "monitor can be switched off.")
        lines.extend(_planner_effort_lines(analysis, planner_metrics))
        return "\n".join(lines)
    if analysis.unserved_requests:
        lines.append("  incomplete: no service bound for request(s) "
                     + ", ".join(analysis.unserved_requests))
    for check in analysis.compliance:
        if check.compliant:
            continue
        lines.append(f"  request {check.request} -> {check.location}:")
        for line in explain_compliance(check.result).splitlines():
            lines.append("    " + line)
    if analysis.security.skipped:
        lines.append("  security check skipped: a failed compliance "
                     "binding already invalidates the plan (pruned).")
    elif not analysis.security.secure:
        for line in explain_security(analysis.security).splitlines():
            lines.append("  " + line)
    lines.extend(_planner_effort_lines(analysis, planner_metrics))
    return "\n".join(lines)


def _planner_effort_lines(analysis: PlanAnalysis,
                          planner_metrics: dict | None) -> list[str]:
    """The explored-state / memoisation summary of a plan narrative."""
    lines: list[str] = []
    explored = [check.result.explored_states
                for check in analysis.compliance
                if check.result.explored_states is not None]
    if explored:
        lines.append(f"  compliance explored {sum(explored)} product "
                     f"state(s) over {len(explored)} binding(s)")
    if not analysis.security.skipped and analysis.security.states_checked:
        lines.append("  security model checking visited "
                     f"{analysis.security.states_checked} abstract "
                     "state(s)")
    if planner_metrics:
        memo_hits = planner_metrics.get("memo_hits", 0)
        memo_misses = planner_metrics.get("memo_misses", 0)
        pruned = planner_metrics.get("plans_pruned", 0)
        if memo_hits or memo_misses or pruned:
            lines.append(f"  planner: {memo_hits} memo hit(s), "
                         f"{memo_misses} miss(es), {pruned} plan(s) "
                         "pruned this pass")
    return lines


def explain_pair(client_body: HistoryExpression,
                 service: HistoryExpression) -> str:
    """Convenience: check and explain one client-body/service pair."""
    return explain_compliance(check_compliance(client_body, service))

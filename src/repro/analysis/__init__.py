"""The static analysis: request extraction, session assembly, security
model checking, plan synthesis, and the Section-5 verification facade.
"""

from repro.analysis.capacity import (CapacityReport, check_capacities,
                                     observed_concurrent_demand,
                                     static_concurrent_demand)
from repro.analysis.planner import (PlanAnalysis, PlannerResult,
                                    analyze_plan, enumerate_plans,
                                    find_valid_plans)
from repro.analysis.requests import (RequestInfo, extract_requests,
                                     request_tree)
from repro.analysis.security import SecurityReport, check_security
from repro.analysis.session_product import assemble, deadlocked_trees
from repro.analysis.verification import (ClientVerdict, NetworkVerdict,
                                         verify_client, verify_network)

__all__ = [
    "CapacityReport", "check_capacities", "observed_concurrent_demand",
    "static_concurrent_demand",
    "PlanAnalysis", "PlannerResult", "analyze_plan", "enumerate_plans",
    "find_valid_plans", "RequestInfo", "extract_requests", "request_tree",
    "SecurityReport", "check_security", "assemble", "deadlocked_trees",
    "ClientVerdict", "NetworkVerdict", "verify_client", "verify_network",
]

"""Extraction of service requests from history expressions (Section 4).

"First we manipulate the syntactic structure of a service in order to
identify and pick up all the requests, i.e. the subterms of the form
``open_{r,φ} H1 close_{r,φ}``."

Besides the flat list, :func:`request_tree` recovers the *nesting*
structure — which requests can only be opened from inside which other
sessions — which the planner uses to resolve the requests of the services
a plan selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.syntax import HistoryExpression, Request, requests_of
from repro.observability.cache_stats import track_cache


@dataclass(frozen=True)
class RequestInfo:
    """One request occurrence: its identifier, the policy the client
    imposes on the session, and the client-side session body."""

    request: str
    policy: object | None
    body: HistoryExpression

    @staticmethod
    def of(node: Request) -> "RequestInfo":
        """Build from a :class:`~repro.core.syntax.Request` node."""
        return RequestInfo(node.request, node.policy, node.body)


@dataclass(frozen=True)
class RequestTree:
    """The requests of a term, with nesting.

    ``direct`` are the requests not enclosed in any other request of the
    same term; each entry pairs the request with the tree of requests
    nested in its body.
    """

    direct: tuple[tuple[RequestInfo, "RequestTree"], ...] = ()

    def all_requests(self) -> tuple[RequestInfo, ...]:
        """Flatten the tree, outermost-first."""
        flat: list[RequestInfo] = []
        for info, subtree in self.direct:
            flat.append(info)
            flat.extend(subtree.all_requests())
        return tuple(flat)

    def __len__(self) -> int:
        return len(self.all_requests())


@lru_cache(maxsize=4096)
def extract_requests(term: HistoryExpression) -> tuple[RequestInfo, ...]:
    """All requests of *term* (nested included), in pre-order.

    Memoised: the planner re-extracts the requests of the same client and
    services once per candidate plan, and terms are immutable.
    """
    return tuple(RequestInfo.of(node) for node in requests_of(term))


track_cache("analysis.extract_requests", extract_requests)


def request_tree(term: HistoryExpression) -> RequestTree:
    """The nesting structure of the requests of *term*."""
    direct: list[tuple[RequestInfo, RequestTree]] = []
    _collect_direct(term, direct)
    return RequestTree(tuple(direct))


def _collect_direct(term: HistoryExpression,
                    out: list[tuple[RequestInfo, RequestTree]]) -> None:
    if isinstance(term, Request):
        out.append((RequestInfo.of(term), request_tree(term.body)))
        return
    for child in term.children():
        _collect_direct(child, out)

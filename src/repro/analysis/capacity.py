"""Bounded service availability: capacity-aware plan checking.

Section 5, future work: "modelling more carefully the availability of
services, that now can replicate themselves unboundedly many times".
This module drops the unbounded-replication assumption: each location
may declare a *capacity* — the number of sessions it can serve
simultaneously — and a plan vector is *feasible* when no reachable
configuration needs more concurrent sessions at a location than its
capacity.

Two checks are provided and cross-validated by the tests:

* :func:`static_concurrent_demand` — a static upper bound: within one
  client, sessions overlap only along nesting chains (sequential
  requests never overlap), and both sides of an open session may have
  nested sessions of their own; across clients everything may overlap,
  so demands add up.  The bound is tight whenever the overlapping opens
  are actually reachable together (the common case; the dynamic check
  below is the ground truth).
* :func:`observed_concurrent_demand` — the dynamic ground truth: the
  maximum, over configurations reachable in the unfiltered semantics, of
  the number of open sessions per location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.requests import RequestTree, request_tree
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.network.config import Configuration, SessionNode, SessionTree
from repro.network.explorer import DEFAULT_CONFIGURATION_LIMIT
from repro.network.repository import Repository
from repro.network.semantics import network_transitions

#: Capacity value meaning "replicates at will" (the paper's default).
UNBOUNDED_CAPACITY = None


def _chain_demand(tree: RequestTree, plan: Plan, location: str,
                  repository: Repository,
                  _seen: frozenset[str] = frozenset()) -> int:
    """Maximum number of *location*-bound requests on one nesting chain.

    Requests of selected services extend the chain below the request
    they serve; already-resolved request identifiers are not re-entered
    (mirrors the planner's treatment of mutual recursion).
    """
    best = 0
    for info, subtree in tree.direct:
        if info.request in _seen:
            continue
        here = 1 if plan.lookup(info.request) == location else 0
        below_client = _chain_demand(subtree, plan, location, repository,
                                     _seen | {info.request})
        target = plan.lookup(info.request)
        service = repository.get(target) if target else None
        below_service = 0
        if service is not None:
            below_service = _chain_demand(request_tree(service), plan,
                                          location, repository,
                                          _seen | {info.request})
        # While this session is open, the client body's nested sessions
        # and the service's own nested sessions may all be open at once.
        best = max(best, here + below_client + below_service)
    return best


def static_concurrent_demand(clients: Sequence[tuple[HistoryExpression,
                                                     Plan]],
                             repository: Repository,
                             location: str) -> int:
    """Static bound on simultaneous sessions at *location* under the
    given (client, plan) vector."""
    return sum(_chain_demand(request_tree(client), plan, location,
                             repository)
               for client, plan in clients)


def _open_sessions_at(tree: SessionTree, location: str) -> int:
    if isinstance(tree, SessionNode):
        served = 1 if _serving_leaf_location(tree) == location else 0
        return (served + _open_sessions_at(tree.left, location)
                + _open_sessions_at(tree.right, location))
    return 0


def _serving_leaf_location(node: SessionNode) -> str | None:
    """The location of the service side of a session node (its right
    element's outermost serving leaf)."""
    right = node.right
    while isinstance(right, SessionNode):
        right = right.left  # the opener of the nested session
    return right.location


def observed_concurrent_demand(configuration: Configuration, plans,
                               repository: Repository, location: str,
                               max_configurations: int =
                               DEFAULT_CONFIGURATION_LIMIT) -> int:
    """Maximum open sessions at *location* over all reachable
    configurations (unfiltered semantics; exact for finite state
    spaces)."""
    from collections import deque

    best = 0
    seen = {configuration}
    frontier = deque([configuration])
    while frontier:
        current = frontier.popleft()
        demand = sum(_open_sessions_at(component.tree, location)
                     for component in current.components)
        best = max(best, demand)
        for transition in network_transitions(current, plans, repository,
                                              enforce_validity=False):
            if transition.successor not in seen:
                if len(seen) >= max_configurations:
                    return best
                seen.add(transition.successor)
                frontier.append(transition.successor)
    return best


@dataclass(frozen=True)
class CapacityReport:
    """Feasibility of a plan vector against declared capacities."""

    demands: tuple[tuple[str, int, int | None], ...]  # (loc, need, cap)

    @property
    def feasible(self) -> bool:
        """No location is oversubscribed."""
        return all(capacity is None or demand <= capacity
                   for _, demand, capacity in self.demands)

    def oversubscribed(self) -> tuple[str, ...]:
        """Locations whose capacity is exceeded."""
        return tuple(location for location, demand, capacity
                     in self.demands
                     if capacity is not None and demand > capacity)

    def __str__(self) -> str:
        rows = []
        for location, demand, capacity in self.demands:
            cap = "∞" if capacity is None else str(capacity)
            flag = "" if capacity is None or demand <= capacity \
                else "  OVERSUBSCRIBED"
            rows.append(f"{location}: needs {demand}, capacity {cap}{flag}")
        return "\n".join(rows)


def check_capacities(clients: Sequence[tuple[HistoryExpression, Plan]],
                     repository: Repository,
                     capacities: Mapping[str, int | None]
                     ) -> CapacityReport:
    """Check the static concurrent demand of a plan vector against the
    declared per-location *capacities* (missing entries are unbounded —
    the paper's replicate-at-will default)."""
    demands = []
    for location in repository.locations():
        demand = static_concurrent_demand(clients, repository, location)
        demands.append((location, demand,
                        capacities.get(location, UNBOUNDED_CAPACITY)))
    return CapacityReport(tuple(demands))

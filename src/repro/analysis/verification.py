"""The end-to-end verification procedure of Section 5.

"Given a repository R and a vector of clients, pick up one of them, say
H, at a time; generate a valid plan πH for H; for each request
``open_{r,φ} H1 close_{r,φ}`` occurring in the composed service check if
``H1 ⊢ H2``, where ``πH(r) = ℓ2`` and ``ℓ2 ∈ R``.  If all these steps
succeed, switch off any run-time monitor, and live happily: nothing bad
will happen."

:func:`verify_network` runs that procedure for every client and returns a
:class:`NetworkVerdict` with, per client, the chosen valid plan (or the
analyses explaining why none exists).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plans import PlanVector
from repro.core.syntax import HistoryExpression
from repro.core.wellformed import check_well_formed
from repro.analysis.planner import (PlanAnalysis, PlannerResult,
                                    find_valid_plans)
from repro.network.repository import Repository


@dataclass(frozen=True)
class ClientVerdict:
    """The verification outcome for one client."""

    location: str
    result: PlannerResult

    @property
    def verified(self) -> bool:
        return self.result.has_valid_plan

    @property
    def plan(self) -> PlanAnalysis | None:
        return self.result.best()


@dataclass(frozen=True)
class NetworkVerdict:
    """The verification outcome for a whole vector of clients."""

    clients: tuple[ClientVerdict, ...]

    @property
    def verified(self) -> bool:
        """Every client has a valid plan: the network can run with the
        monitor switched off."""
        return all(client.verified for client in self.clients)

    def plan_vector(self) -> PlanVector:
        """The vector ``~π`` of chosen valid plans.

        Raises :class:`ValueError` if some client has none."""
        plans = []
        for client in self.clients:
            best = client.plan
            if best is None:
                raise ValueError(
                    f"client at {client.location} has no valid plan")
            plans.append(best.plan)
        return PlanVector(tuple(plans))

    def report(self) -> str:
        """A multi-line human-readable report."""
        lines = []
        for client in self.clients:
            if client.verified:
                assert client.plan is not None
                lines.append(f"{client.location}: {client.plan.explain()}")
            else:
                lines.append(f"{client.location}: NO valid plan "
                             f"({len(client.result.invalid_plans)} "
                             "candidates rejected)")
                for analysis in client.result.invalid_plans:
                    lines.append(f"  - {analysis.explain()}")
        verdict = ("network verified: switch off the monitor"
                   if self.verified else "network NOT verified")
        lines.append(verdict)
        return "\n".join(lines)


def verify_client(client: HistoryExpression, repository: Repository,
                  location: str = "client",
                  candidates=None,
                  max_plans: int | None = None,
                  memoize: bool = True,
                  parallel: int | None = None) -> ClientVerdict:
    """Verify one client: well-formedness, then plan synthesis with the
    compliance and security checks.

    *memoize* and *parallel* are forwarded to
    :func:`~repro.analysis.planner.find_valid_plans`.
    """
    check_well_formed(client)
    result = find_valid_plans(client, repository, candidates=candidates,
                              location=location, max_plans=max_plans,
                              memoize=memoize, parallel=parallel)
    return ClientVerdict(location, result)


def verify_network(clients: dict[str, HistoryExpression],
                   repository: Repository,
                   candidates=None,
                   max_plans: int | None = None,
                   memoize: bool = True,
                   parallel: int | None = None) -> NetworkVerdict:
    """Verify a vector of clients (mapping location → behaviour) against
    a shared repository — the full procedure of Section 5."""
    verdicts = tuple(
        verify_client(term, repository, location=location,
                      candidates=candidates, max_plans=max_plans,
                      memoize=memoize, parallel=parallel)
        for location, term in clients.items())
    return NetworkVerdict(verdicts)

"""Construction of valid plans (paper, Sections 4 and 5).

"Our task … will be defining a static analysis that allows us to
construct valid plans, only.  With such plans, neither violations of
security, nor missing communications can occur, so there is no need for
any execution monitor at run-time."

The planner enumerates candidate plans for one client over a repository
(resolving, transitively, the requests of the services a plan selects)
and analyses each candidate with the paper's two static checks:

* **compliance** — for each request ``open_{r,φ} H1 close_{r,φ}`` served
  by ``ℓ2``, check ``H1 ⊢ H2`` with ``π(r) = ℓ2`` via the product
  automaton of Definition 5 (Theorem 1);
* **security** — model-check the assembled behaviour ``⟨Ĥ, π⟩`` for
  validity (Section 3.1), via the session product and the abstract
  monitor of :mod:`repro.analysis.security`.

A plan passing both is *valid*; the exhaustive network explorer
(:mod:`repro.network.explorer`) is the independent oracle the test suite
compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.compliance import ComplianceResult, check_compliance
from repro.core.errors import PlanError
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.analysis.requests import RequestInfo, extract_requests
from repro.analysis.security import SecurityReport, check_security
from repro.analysis.session_product import (assemble, deadlocked_trees)
from repro.network.repository import Repository


@dataclass(frozen=True)
class ComplianceCheck:
    """The compliance verdict for one served request."""

    request: str
    location: str
    result: ComplianceResult

    @property
    def compliant(self) -> bool:
        return self.result.compliant


@dataclass(frozen=True)
class PlanAnalysis:
    """Everything the static analysis determined about one plan."""

    plan: Plan
    compliance: tuple[ComplianceCheck, ...]
    security: SecurityReport
    unserved_requests: tuple[str, ...] = ()

    @property
    def compliant(self) -> bool:
        """All served requests pair compliant contracts."""
        return all(check.compliant for check in self.compliance)

    @property
    def secure(self) -> bool:
        """The assembled behaviour never produces an invalid history."""
        return self.security.secure

    @property
    def valid(self) -> bool:
        """The paper's plan validity: complete, compliant and secure."""
        return (not self.unserved_requests and self.compliant
                and self.secure)

    def explain(self) -> str:
        """A human-readable verdict."""
        if self.valid:
            return f"plan {self.plan} is VALID"
        reasons = []
        if self.unserved_requests:
            reasons.append("unserved requests: "
                           + ", ".join(self.unserved_requests))
        for check in self.compliance:
            if not check.compliant:
                reasons.append(
                    f"request {check.request} -> {check.location}: "
                    "contracts are not compliant")
        if not self.secure:
            policy = self.security.violated_policy
            reasons.append(f"security violation of {policy} reachable")
        return f"plan {self.plan} is INVALID ({'; '.join(reasons)})"


def enumerate_plans(client: HistoryExpression,
                    repository: Repository,
                    candidates=None) -> Iterator[Plan]:
    """All complete plans for *client* over *repository*.

    Requests introduced by selected services are resolved transitively; a
    request identifier already bound is not re-resolved (which also keeps
    mutually-requesting services from looping).  *candidates* optionally
    maps a request identifier to the locations allowed to serve it.
    """

    def options_for(info: RequestInfo) -> tuple[str, ...]:
        if candidates is not None and info.request in candidates:
            return tuple(candidates[info.request])
        return repository.locations()

    def resolve(queue: tuple[RequestInfo, ...],
                plan: Plan) -> Iterator[Plan]:
        position = 0
        while position < len(queue):
            if queue[position].request not in plan:
                break
            position += 1
        else:
            yield plan
            return
        info = queue[position]
        rest = queue[position + 1:]
        for location in options_for(info):
            service = repository.get(location)
            if service is None:
                continue
            try:
                extended = plan.bind(info.request, location)
            except PlanError:
                continue
            yield from resolve(rest + extract_requests(service), extended)

    yield from resolve(extract_requests(client), Plan.empty())


def analyze_plan(client: HistoryExpression, plan: Plan,
                 repository: Repository,
                 location: str = "client") -> PlanAnalysis:
    """Run both static checks on one candidate plan."""
    compliance: list[ComplianceCheck] = []
    unserved: list[str] = []
    seen_requests: set[str] = set()

    queue = list(extract_requests(client))
    while queue:
        info = queue.pop(0)
        if info.request in seen_requests:
            continue
        seen_requests.add(info.request)
        target = plan.lookup(info.request)
        if target is None or target not in repository:
            unserved.append(info.request)
            continue
        service = repository[target]
        compliance.append(ComplianceCheck(
            info.request, target, check_compliance(info.body, service)))
        queue.extend(extract_requests(service))

    lts = assemble(client, plan, repository, location)
    security = check_security(lts)
    return PlanAnalysis(plan, tuple(compliance), security,
                        tuple(unserved))


@dataclass
class PlannerResult:
    """The outcome of a full planning pass for one client."""

    valid_plans: list[PlanAnalysis] = field(default_factory=list)
    invalid_plans: list[PlanAnalysis] = field(default_factory=list)

    @property
    def has_valid_plan(self) -> bool:
        return bool(self.valid_plans)

    def best(self) -> PlanAnalysis | None:
        """Some valid plan (the first found), or ``None``."""
        return self.valid_plans[0] if self.valid_plans else None


def find_valid_plans(client: HistoryExpression, repository: Repository,
                     candidates=None, location: str = "client",
                     max_plans: int | None = None) -> PlannerResult:
    """Enumerate and analyse plans for *client*, separating the valid
    ones — the viable orchestrations of Section 5.

    *max_plans* bounds the number of candidates analysed (``None`` for
    all)."""
    result = PlannerResult()
    for count, plan in enumerate(enumerate_plans(client, repository,
                                                 candidates)):
        if max_plans is not None and count >= max_plans:
            break
        analysis = analyze_plan(client, plan, repository, location)
        if analysis.valid:
            result.valid_plans.append(analysis)
        else:
            result.invalid_plans.append(analysis)
    return result


def unfailing_in_product(client: HistoryExpression, plan: Plan,
                         repository: Repository,
                         location: str = "client") -> bool:
    """Whole-system progress check on the assembled LTS: no reachable
    deadlocked, non-terminated session tree.

    For complete plans this agrees with per-request compliance; the test
    suite cross-validates the two."""
    lts = assemble(client, plan, repository, location)
    return not deadlocked_trees(lts)

"""Construction of valid plans (paper, Sections 4 and 5).

"Our task … will be defining a static analysis that allows us to
construct valid plans, only.  With such plans, neither violations of
security, nor missing communications can occur, so there is no need for
any execution monitor at run-time."

The planner enumerates candidate plans for one client over a repository
(resolving, transitively, the requests of the services a plan selects)
and analyses each candidate with the paper's two static checks:

* **compliance** — for each request ``open_{r,φ} H1 close_{r,φ}`` served
  by ``ℓ2``, check ``H1 ⊢ H2`` with ``π(r) = ℓ2`` via the product
  automaton of Definition 5 (Theorem 1);
* **security** — model-check the assembled behaviour ``⟨Ĥ, π⟩`` for
  validity (Section 3.1), via the session product and the abstract
  monitor of :mod:`repro.analysis.security`.

A plan passing both is *valid*; the exhaustive network explorer
(:mod:`repro.network.explorer`) is the independent oracle the test suite
compares against.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

from repro.observability import runtime as _telemetry

from repro.core.compliance import ComplianceResult, check_compliance
from repro.core.errors import PlanError
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.analysis.requests import RequestInfo, extract_requests
from repro.analysis.security import SecurityReport, check_security
from repro.analysis.session_product import (assemble, deadlocked_trees)
from repro.network.repository import Repository


class ComplianceCache:
    """Memoised compliance verdicts, keyed ``(request body, service term)``.

    Compliance of a binding depends only on the client-side session body
    and the chosen service's behaviour — never on the rest of the plan —
    so one verdict is shared by every candidate plan containing the
    binding: Theorem 1 is decided once per distinct pair instead of once
    per plan.  ``hits``/``misses`` are exposed for the benchmark harness.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[tuple[HistoryExpression, HistoryExpression],
                          ComplianceResult] = {}
        self.hits = 0
        self.misses = 0

    def check(self, body: HistoryExpression,
              service: HistoryExpression) -> ComplianceResult:
        """The memoised equivalent of :func:`check_compliance`."""
        key = (body, service)
        cached = self._table.get(key)
        tel = _telemetry.active()
        if cached is not None:
            self.hits += 1
            if tel is not None:
                tel.metrics.counter("planner.memo", outcome="hit").inc()
            return cached
        if tel is None:
            result = check_compliance(body, service)
        else:
            tel.metrics.counter("planner.memo", outcome="miss").inc()
            with tel.metrics.histogram(
                    "planner.binding_check_seconds").time():
                result = check_compliance(body, service)
        self._table[key] = result
        self.misses += 1
        return result

    def __len__(self) -> int:
        return len(self._table)


@dataclass(frozen=True)
class ComplianceCheck:
    """The compliance verdict for one served request."""

    request: str
    location: str
    result: ComplianceResult

    @property
    def compliant(self) -> bool:
        return self.result.compliant


@dataclass(frozen=True)
class PlanAnalysis:
    """Everything the static analysis determined about one plan."""

    plan: Plan
    compliance: tuple[ComplianceCheck, ...]
    security: SecurityReport
    unserved_requests: tuple[str, ...] = ()

    @property
    def compliant(self) -> bool:
        """All served requests pair compliant contracts."""
        return all(check.compliant for check in self.compliance)

    @property
    def secure(self) -> bool:
        """The assembled behaviour never produces an invalid history."""
        return self.security.secure

    @property
    def valid(self) -> bool:
        """The paper's plan validity: complete, compliant and secure."""
        return (not self.unserved_requests and self.compliant
                and self.secure)

    def explain(self) -> str:
        """A human-readable verdict."""
        if self.valid:
            return f"plan {self.plan} is VALID"
        reasons = []
        if self.unserved_requests:
            reasons.append("unserved requests: "
                           + ", ".join(self.unserved_requests))
        for check in self.compliance:
            if not check.compliant:
                reasons.append(
                    f"request {check.request} -> {check.location}: "
                    "contracts are not compliant")
        if not self.secure:
            policy = self.security.violated_policy
            reasons.append(f"security violation of {policy} reachable")
        return f"plan {self.plan} is INVALID ({'; '.join(reasons)})"


def enumerate_plans(client: HistoryExpression,
                    repository: Repository,
                    candidates=None) -> Iterator[Plan]:
    """All complete plans for *client* over *repository*.

    Requests introduced by selected services are resolved transitively; a
    request identifier already bound is not re-resolved (which also keeps
    mutually-requesting services from looping).  *candidates* optionally
    maps a request identifier to the locations allowed to serve it.
    """

    def options_for(info: RequestInfo) -> tuple[str, ...]:
        if candidates is not None and info.request in candidates:
            return tuple(candidates[info.request])
        return repository.locations()

    def resolve(queue: tuple[RequestInfo, ...],
                plan: Plan) -> Iterator[Plan]:
        position = 0
        while position < len(queue):
            if queue[position].request not in plan:
                break
            position += 1
        else:
            yield plan
            return
        info = queue[position]
        rest = queue[position + 1:]
        for location in options_for(info):
            service = repository.get(location)
            if service is None:
                continue
            try:
                extended = plan.bind(info.request, location)
            except PlanError:
                continue
            yield from resolve(rest + extract_requests(service), extended)

    yield from resolve(extract_requests(client), Plan.empty())


def analyze_plan(client: HistoryExpression, plan: Plan,
                 repository: Repository,
                 location: str = "client", *,
                 cache: ComplianceCache | None = None,
                 prune: bool = False) -> PlanAnalysis:
    """Run both static checks on one candidate plan.

    *cache* memoises compliance verdicts across calls (shared by the
    planner over all candidate plans).  With *prune*, the analysis stops
    at the first failed compliance check and skips the security model
    checking entirely — the plan is already invalid, and compliance of a
    binding is independent of the rest of the plan, so the verdict (and
    the valid/invalid partition) is unchanged; only the per-plan cost
    drops from O(security product) to O(first failing pair).
    """
    compliance: list[ComplianceCheck] = []
    unserved: list[str] = []
    seen_requests: set[str] = set()
    decide = cache.check if cache is not None else check_compliance

    queue = list(extract_requests(client))
    while queue:
        info = queue.pop(0)
        if info.request in seen_requests:
            continue
        seen_requests.add(info.request)
        target = plan.lookup(info.request)
        if target is None or target not in repository:
            unserved.append(info.request)
            continue
        service = repository[target]
        check = ComplianceCheck(info.request, target,
                                decide(info.body, service))
        compliance.append(check)
        if prune and not check.compliant:
            return PlanAnalysis(plan, tuple(compliance),
                                SecurityReport.skipped_report(),
                                tuple(unserved))
        queue.extend(extract_requests(service))

    lts = assemble(client, plan, repository, location)
    security = check_security(lts)
    return PlanAnalysis(plan, tuple(compliance), security,
                        tuple(unserved))


@dataclass
class PlannerResult:
    """The outcome of a full planning pass for one client.

    ``metrics`` summarises the work the pass performed — plans analysed
    and pruned, memo hits/misses, distinct bindings decided — and is
    always filled (cheap integers), telemetry enabled or not, so
    diagnostics can narrate planner effort.
    """

    valid_plans: list[PlanAnalysis] = field(default_factory=list)
    invalid_plans: list[PlanAnalysis] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def has_valid_plan(self) -> bool:
        return bool(self.valid_plans)

    def best(self) -> PlanAnalysis | None:
        """Some valid plan (the first found), or ``None``."""
        return self.valid_plans[0] if self.valid_plans else None


def find_valid_plans(client: HistoryExpression, repository: Repository,
                     candidates=None, location: str = "client",
                     max_plans: int | None = None, *,
                     memoize: bool = True,
                     prune: bool | None = None,
                     parallel: int | None = None) -> PlannerResult:
    """Enumerate and analyse plans for *client*, separating the valid
    ones — the viable orchestrations of Section 5.

    *max_plans* bounds the number of candidates analysed (``None`` for
    all).

    *memoize* (default on) shares one :class:`ComplianceCache` across all
    candidates, so each distinct ``(request body, service)`` pair is
    decided once.  *prune* (defaults to *memoize*) short-circuits the
    analysis of any plan containing a binding already known to fail
    compliance — such a plan skips even its compliance walk and never
    reaches the security model checker.  Neither knob changes the
    valid/invalid partition: pruned plans are still enumerated and
    reported invalid, carrying the failing check.

    *parallel* > 1 analyses candidates with a thread pool of that many
    workers (opt-in; worthwhile for large repositories where analyses
    release the interpreter lock or the pool hides I/O-ish latency).
    Results keep enumeration order regardless.
    """
    if prune is None:
        prune = memoize
    cache = ComplianceCache() if memoize else None
    plans = enumerate_plans(client, repository, candidates)
    if max_plans is not None:
        plans = itertools.islice(plans, max_plans)

    #: Bindings whose compliance already failed → the cached failing check.
    bad_bindings: dict[tuple[str, str], ComplianceCheck] = {}

    def analyse(plan: Plan) -> PlanAnalysis:
        if prune:
            for binding in plan.items():
                known = bad_bindings.get(binding)
                if known is not None:
                    # Every plan containing a failed binding is invalid;
                    # reuse the verdict without re-walking the plan.
                    return PlanAnalysis(plan, (known,),
                                        SecurityReport.skipped_report())
        tel = _telemetry.active()
        if tel is None:
            analysis = analyze_plan(client, plan, repository, location,
                                    cache=cache, prune=prune)
        else:
            start = perf_counter()
            analysis = analyze_plan(client, plan, repository, location,
                                    cache=cache, prune=prune)
            tel.metrics.histogram("planner.analyze_seconds").observe(
                perf_counter() - start)
        if prune:
            for check in analysis.compliance:
                if not check.compliant:
                    bad_bindings[(check.request, check.location)] = check
        return analysis

    def collect() -> PlannerResult:
        if parallel is not None and parallel > 1:
            with ThreadPoolExecutor(max_workers=parallel) as pool:
                analyses = list(pool.map(analyse, plans))
        else:
            analyses = map(analyse, plans)

        result = PlannerResult()
        pruned = 0
        for analysis in analyses:
            if analysis.security.skipped:
                pruned += 1
            if analysis.valid:
                result.valid_plans.append(analysis)
            else:
                result.invalid_plans.append(analysis)
        result.metrics = {
            "plans_analyzed": (len(result.valid_plans)
                               + len(result.invalid_plans)),
            "plans_valid": len(result.valid_plans),
            "plans_pruned": pruned,
            "memo_hits": cache.hits if cache is not None else 0,
            "memo_misses": cache.misses if cache is not None else 0,
            "distinct_bindings": len(cache) if cache is not None else 0,
        }
        return result

    tel = _telemetry.active()
    if tel is None:
        return collect()
    with tel.tracer.span("planner.find_valid_plans",
                         location=location) as span:
        result = collect()
        span.set(**result.metrics)
        metrics = tel.metrics
        metrics.counter("planner.plans",
                        verdict="valid").inc(len(result.valid_plans))
        metrics.counter("planner.plans",
                        verdict="invalid").inc(len(result.invalid_plans))
        metrics.counter("planner.plans_pruned").inc(
            result.metrics["plans_pruned"])
        return result


def unfailing_in_product(client: HistoryExpression, plan: Plan,
                         repository: Repository,
                         location: str = "client") -> bool:
    """Whole-system progress check on the assembled LTS: no reachable
    deadlocked, non-terminated session tree.

    For complete plans this agrees with per-request compliance; the test
    suite cross-validates the two."""
    lts = assemble(client, plan, repository, location)
    return not deadlocked_trees(lts)

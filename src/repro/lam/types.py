"""Types for the service λ-calculus.

The paper's programming model (Section 3): "Services are represented by
λ-expressions, and a type and effect system extracts their abstract
behaviour, in the form of history expressions" — the machinery of
refs [4, 5], which the paper inherits.  This package implements it for a
monomorphic λ-calculus with communication, event, session and framing
primitives.

Types are::

    τ ::= unit | bool | int | str | τ --H--> τ

Arrow types carry a *latent effect* ``H`` — the history expression the
function produces when applied.  Effects on values other than functions
are not needed: the calculus abstracts data away (events carry literal
payloads; received values are typed but opaque).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import HistoryExpression


class Type:
    """Abstract base class of types."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TUnit(Type):
    """The unit type."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True, slots=True)
class TBool(Type):
    """Booleans."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True, slots=True)
class TInt(Type):
    """Integers."""

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class TStr(Type):
    """Strings."""

    def __str__(self) -> str:
        return "str"


@dataclass(frozen=True, slots=True)
class TFun(Type):
    """A function type ``param --latent--> result``.

    ``latent`` is the effect unleashed at application time.
    """

    param: Type
    latent: HistoryExpression
    result: Type

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        effect = pretty(self.latent)
        return f"({self.param} --{effect}--> {self.result})"


#: Shared instances of the base types.
UNIT = TUnit()
BOOL = TBool()
INT = TInt()
STR = TStr()


def type_of_literal(value: object) -> Type:
    """The base type of a literal constant."""
    if value is None or value == ():
        return UNIT
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, str):
        return STR
    raise TypeError(f"no base type for literal {value!r}")

"""Abstract syntax of the service λ-calculus.

The term language mixes a standard call-by-value λ-calculus with the
side-effecting primitives of the calculus of services:

* ``evt(name, payload…)`` — fire the access event ``α_name(payload…)``;
* ``send(channel, e)`` / ``recv(channel, type)`` — channel output and
  input (values travel, but their content is abstracted away: the
  *effect* records only the channel);
* ``open_session(r, φ, e)`` — run ``e`` inside the session
  ``open_{r,φ} … close_{r,φ}``;
* ``within(φ, e)`` — the security framing ``φ[e]``;
* ``fix(f, x, τx, τr, body)`` — recursive functions (the effect system
  closes their latent effect with ``μ``).

Terms are built with the lowercase helper functions at the bottom of
this module; ``seq_terms(e1, e2, …)`` chains unit-valued steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lam.types import Type


class LamTerm:
    """Abstract base class of λ-terms."""

    __slots__ = ()

    def children(self) -> tuple["LamTerm", ...]:
        """Immediate subterms."""
        return ()

    def walk(self) -> Iterator["LamTerm"]:
        """Pre-order traversal (self included)."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class Lit(LamTerm):
    """A literal constant (``()``, booleans, integers, strings)."""

    value: object


@dataclass(frozen=True, slots=True)
class Var(LamTerm):
    """A variable reference."""

    name: str


@dataclass(frozen=True, slots=True)
class Lam(LamTerm):
    """An abstraction ``λ(param : annotation). body``."""

    param: str
    annotation: Type
    body: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class App(LamTerm):
    """An application ``fun arg``."""

    fun: LamTerm
    arg: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.fun, self.arg)


@dataclass(frozen=True, slots=True)
class Let(LamTerm):
    """``let name = bound in body`` (also the sequencing sugar)."""

    name: str
    bound: LamTerm
    body: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.bound, self.body)


@dataclass(frozen=True, slots=True)
class If(LamTerm):
    """A conditional; the effect system joins the branch effects."""

    condition: LamTerm
    then: LamTerm
    orelse: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.condition, self.then, self.orelse)


@dataclass(frozen=True, slots=True)
class Evt(LamTerm):
    """Fire an access event with literal payloads; value ``()``."""

    name: str
    payload: tuple = ()


@dataclass(frozen=True, slots=True)
class SendT(LamTerm):
    """Evaluate *value*, then output it on *channel*; value ``()``."""

    channel: str
    value: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.value,)


@dataclass(frozen=True, slots=True)
class RecvT(LamTerm):
    """Input on *channel*; the received value has the annotated type."""

    channel: str
    annotation: Type


@dataclass(frozen=True, slots=True)
class Offer(LamTerm):
    """Wait for one of several channels; run that branch's body.

    The λ-level form of external choice: ``offer(("a", e1), ("b", e2))``
    has effect ``Σ (a.H1, b.H2)`` and the branches' common type.
    """

    branches: tuple[tuple[str, "LamTerm"], ...]

    def children(self) -> tuple["LamTerm", ...]:
        return tuple(body for _, body in self.branches)


@dataclass(frozen=True, slots=True)
class OpenSession(LamTerm):
    """Run *body* inside the session ``open_{request,policy} …``."""

    request: str
    policy: object | None
    body: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class Within(LamTerm):
    """Run *body* under the security framing ``policy[…]``."""

    policy: object
    body: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class Fix(LamTerm):
    """A recursive function ``fix fun(param : annotation) : result = body``.

    Inside *body*, ``fun`` is bound to the function itself; the effect
    system closes the latent effect with ``μ`` and enforces the
    calculus's guarded-tail-recursion restriction.
    """

    fun: str
    param: str
    annotation: Type
    result: Type
    body: LamTerm

    def children(self) -> tuple[LamTerm, ...]:
        return (self.body,)


# -- concise constructors ----------------------------------------------------

def lit(value: object) -> Lit:
    """A literal."""
    return Lit(value)


#: The unit value ``()``.
UNIT_VALUE = Lit(None)


def var(name: str) -> Var:
    """A variable."""
    return Var(name)


def lam(param: str, annotation: Type, body: LamTerm) -> Lam:
    """An abstraction."""
    return Lam(param, annotation, body)


def app(fun: LamTerm, *args: LamTerm) -> LamTerm:
    """Left-associated application ``fun a1 a2 …``."""
    result: LamTerm = fun
    for arg in args:
        result = App(result, arg)
    return result


def let(name: str, bound: LamTerm, body: LamTerm) -> Let:
    """A let binding."""
    return Let(name, bound, body)


def seq_terms(*steps: LamTerm) -> LamTerm:
    """``e1 ; e2 ; …`` — evaluate in order, keep the last value."""
    if not steps:
        return UNIT_VALUE
    result = steps[-1]
    for index, step in enumerate(reversed(steps[:-1])):
        result = Let(f"_seq{index}", step, result)
    return result


def cond(condition: LamTerm, then: LamTerm, orelse: LamTerm) -> If:
    """A conditional."""
    return If(condition, then, orelse)


def evt(name: str, *payload: object) -> Evt:
    """Fire ``α_name(payload…)``."""
    return Evt(name, tuple(payload))


def send(channel: str, value: LamTerm = UNIT_VALUE) -> SendT:
    """Output on *channel*."""
    return SendT(channel, value)


def recv(channel: str, annotation: Type | None = None) -> RecvT:
    """Input on *channel* (default type: unit)."""
    from repro.lam.types import UNIT
    return RecvT(channel, annotation if annotation is not None else UNIT)


def offer(*branches: tuple[str, LamTerm]) -> Offer:
    """External choice over channels."""
    return Offer(tuple(branches))


def open_session(request: str, policy: object | None,
                 body: LamTerm) -> OpenSession:
    """A session request."""
    return OpenSession(str(request), policy, body)


def within(policy: object, body: LamTerm) -> Within:
    """A security framing."""
    return Within(policy, body)


def fix(fun: str, param: str, annotation: Type, result: Type,
        body: LamTerm) -> Fix:
    """A recursive function."""
    return Fix(fun, param, annotation, result, body)

"""The service λ-calculus and its type-and-effect system.

"Services are represented by λ-expressions, and a type and effect
system extracts their abstract behaviour, in the form of history
expressions" (paper, Section 3; machinery of refs [4, 5]).  This package
implements that front end: a monomorphic call-by-value λ-calculus with
event, communication, session and framing primitives
(:mod:`repro.lam.syntax`), and the inference that compiles a service
program down to the history expression every other layer of the library
consumes (:mod:`repro.lam.infer`).
"""

from repro.lam.effects import EffectJoinError, distribute, join
from repro.lam.parser import parse_program
from repro.lam.infer import (Judgement, TypeEffectError, extract, infer)
from repro.lam.syntax import (App, Evt, Fix, If, Lam, LamTerm, Let, Lit,
                              Offer, OpenSession, RecvT, SendT,
                              UNIT_VALUE, Var, Within, app, cond, evt,
                              fix, lam, let, lit, offer, open_session,
                              recv, send, seq_terms, var, within)
from repro.lam.types import (BOOL, INT, STR, TBool, TFun, TInt, TStr,
                             TUnit, Type, UNIT)

__all__ = [
    "EffectJoinError", "distribute", "join", "parse_program", "Judgement",
    "TypeEffectError", "extract", "infer",
    "App", "Evt", "Fix", "If", "Lam", "LamTerm", "Let", "Lit", "Offer",
    "OpenSession", "RecvT", "SendT", "UNIT_VALUE", "Var", "Within",
    "app", "cond", "evt", "fix", "lam", "let", "lit", "offer",
    "open_session", "recv", "send", "seq_terms", "var", "within",
    "BOOL", "INT", "STR", "TBool", "TFun", "TInt", "TStr", "TUnit",
    "Type", "UNIT",
]

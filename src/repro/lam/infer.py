"""The type-and-effect system: λ-terms → (type, history expression).

Judgements have the form ``Γ ⊢ e : τ ▷ H`` — under environment ``Γ``,
term ``e`` has type ``τ`` and evaluating it produces the history
expression ``H``.  The rules are the standard monomorphic ones of the
call-by-contract methodology (refs [4, 5] of the paper):

* values (literals, variables, abstractions) are pure (``ε``);
* application unleashes ``H_fun · H_arg · latent``;
* ``if`` joins the branch effects (:func:`repro.lam.effects.join`),
  which enforces the calculus's guarded-choice discipline;
* the primitives produce their namesake effects (event, ``ā``/``a``,
  ``open_{r,φ} … close_{r,φ}``, ``φ[…]``);
* ``fix`` types the body under the recursive assumption that calls to
  the function contribute the effect variable ``h`` and closes the
  latent effect with ``μh``; the result must satisfy the calculus's
  guarded-tail-recursion restriction, checked immediately with a
  targeted error message.

The public entry point is :func:`extract`; on success the effect is a
plain, well-formed :class:`~repro.core.syntax.HistoryExpression`, ready
for the planner, the compliance checker and everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError, WellFormednessError
from repro.core.syntax import (EPSILON, EventNode, Framing,
                               HistoryExpression, Mu, Request)
from repro.core.syntax import Var as EffectVar
from repro.core.syntax import receive as effect_receive
from repro.core.syntax import send as effect_send
from repro.core.syntax import seq
from repro.core.actions import Event
from repro.core.wellformed import (check_guarded_tail_recursion,
                                   check_well_formed)
from repro.lam.effects import join
from repro.lam.syntax import (App, Evt, Fix, If, Lam, LamTerm, Let, Lit,
                              Offer, OpenSession, RecvT, SendT, Var,
                              Within)
from repro.lam.types import BOOL, TFun, Type, UNIT, type_of_literal


class TypeEffectError(ReproError):
    """A λ-term is ill-typed or has an inexpressible effect."""


@dataclass(frozen=True)
class Judgement:
    """The result of inference: ``e : type ▷ effect``."""

    type: Type
    effect: HistoryExpression


#: Environment: variable name → type.
Environment = dict


def infer(term: LamTerm, env: Environment | None = None) -> Judgement:
    """Infer the type and effect of *term* under *env*."""
    return _infer(term, dict(env or {}), recursion=None)


def extract(term: LamTerm,
            env: Environment | None = None) -> HistoryExpression:
    """The abstract behaviour of a *service*: infer, then validate.

    The term must denote a computation (not a bare function): its effect
    is returned after the well-formedness check of the calculus.
    """
    judgement = infer(term, env)
    try:
        check_well_formed(judgement.effect)
    except WellFormednessError as error:
        raise TypeEffectError(
            f"the extracted behaviour is not a well-formed history "
            f"expression: {error}") from error
    return judgement.effect


@dataclass(frozen=True)
class _Recursion:
    """Tracks the enclosing ``fix`` while typing its body."""

    fun: str
    param_type: Type
    result: Type
    effect_var: str


def _infer(term: LamTerm, env: Environment,
           recursion: _Recursion | None) -> Judgement:
    if isinstance(term, Lit):
        return Judgement(_literal_type(term), EPSILON)
    if isinstance(term, Var):
        if recursion is not None and term.name == recursion.fun \
                and term.name not in env:
            raise TypeEffectError(
                f"recursive function {recursion.fun!r} must be fully "
                "applied (bare occurrences have no latent-effect "
                "placeholder)")
        if term.name not in env:
            raise TypeEffectError(f"unbound variable {term.name!r}")
        return Judgement(env[term.name], EPSILON)
    if isinstance(term, Lam):
        inner = dict(env)
        inner[term.param] = term.annotation
        body = _infer(term.body, inner, recursion)
        return Judgement(TFun(term.annotation, body.effect, body.type),
                         EPSILON)
    if isinstance(term, App):
        return _infer_app(term, env, recursion)
    if isinstance(term, Let):
        bound = _infer(term.bound, env, recursion)
        inner = dict(env)
        inner[term.name] = bound.type
        body = _infer(term.body, inner, recursion)
        return Judgement(body.type, seq(bound.effect, body.effect))
    if isinstance(term, If):
        condition = _infer(term.condition, env, recursion)
        if condition.type != BOOL:
            raise TypeEffectError(
                f"condition must be bool, got {condition.type}")
        then = _infer(term.then, env, recursion)
        orelse = _infer(term.orelse, env, recursion)
        if then.type != orelse.type:
            raise TypeEffectError(
                f"branches disagree: {then.type} vs {orelse.type}")
        return Judgement(then.type,
                         seq(condition.effect,
                             join(then.effect, orelse.effect)))
    if isinstance(term, Evt):
        return Judgement(UNIT, EventNode(Event(term.name, term.payload)))
    if isinstance(term, SendT):
        value = _infer(term.value, env, recursion)
        return Judgement(UNIT, seq(value.effect,
                                   effect_send(term.channel)))
    if isinstance(term, RecvT):
        return Judgement(term.annotation, effect_receive(term.channel))
    if isinstance(term, Offer):
        if not term.branches:
            raise TypeEffectError("offer needs at least one branch")
        judgements = [(channel, _infer(body, env, recursion))
                      for channel, body in term.branches]
        first_type = judgements[0][1].type
        for channel, judgement in judgements[1:]:
            if judgement.type != first_type:
                raise TypeEffectError(
                    f"offer branches disagree: {first_type} vs "
                    f"{judgement.type} (branch {channel!r})")
        from repro.core.actions import Receive
        from repro.core.syntax import ExternalChoice
        return Judgement(first_type, ExternalChoice(tuple(
            (Receive(channel), judgement.effect)
            for channel, judgement in judgements)))
    if isinstance(term, OpenSession):
        body = _infer(term.body, env, recursion)
        return Judgement(body.type,
                         Request(term.request, term.policy, body.effect))
    if isinstance(term, Within):
        body = _infer(term.body, env, recursion)
        return Judgement(body.type, Framing(term.policy, body.effect))
    if isinstance(term, Fix):
        return _infer_fix(term, env)
    raise TypeError(f"unknown λ-term {term!r}")


def _literal_type(term: Lit) -> Type:
    try:
        return type_of_literal(term.value)
    except TypeError as error:
        raise TypeEffectError(str(error)) from error


def _infer_app(term: App, env: Environment,
               recursion: _Recursion | None) -> Judgement:
    # Recursive self-application gets the effect variable, not the (as
    # yet unknown) latent effect.
    if (recursion is not None and isinstance(term.fun, Var)
            and term.fun.name == recursion.fun):
        arg = _infer(term.arg, env, recursion)
        if arg.type != recursion.param_type:
            raise TypeEffectError(
                f"recursive call of {recursion.fun!r} expects "
                f"{recursion.param_type}, got {arg.type}")
        return Judgement(recursion.result,
                         seq(arg.effect, EffectVar(recursion.effect_var)))
    fun = _infer(term.fun, env, recursion)
    if not isinstance(fun.type, TFun):
        raise TypeEffectError(f"cannot apply a non-function of type "
                              f"{fun.type}")
    arg = _infer(term.arg, env, recursion)
    if arg.type != fun.type.param:
        raise TypeEffectError(
            f"argument type mismatch: expected {fun.type.param}, got "
            f"{arg.type}")
    return Judgement(fun.type.result,
                     seq(fun.effect, arg.effect, fun.type.latent))


def _infer_fix(term: Fix, env: Environment) -> Judgement:
    effect_var = f"h_{term.fun}"
    marker = _Recursion(term.fun, term.annotation, term.result,
                        effect_var)
    inner = dict(env)
    inner[term.param] = term.annotation
    # `term.fun` is NOT added to the environment as an ordinary variable:
    # occurrences must be fully applied so the effect variable lands in a
    # meaningful position; _occurs_bare reports violations precisely.
    body = _infer(term.body, inner, marker)
    if body.type != term.result:
        raise TypeEffectError(
            f"fix body has type {body.type}, annotation says "
            f"{term.result}")
    latent: HistoryExpression = body.effect
    if effect_var in _free_effect_vars(latent):
        latent = Mu(effect_var, latent)
        try:
            check_guarded_tail_recursion(latent)
        except WellFormednessError as error:
            raise TypeEffectError(
                f"recursion in {term.fun!r} violates the calculus's "
                f"guarded-tail-recursion restriction: {error}") from error
    return Judgement(TFun(term.annotation, latent, term.result), EPSILON)


def _free_effect_vars(effect: HistoryExpression) -> frozenset[str]:
    from repro.core.syntax import free_variables
    return free_variables(effect)

"""Concrete syntax for the service λ-calculus.

Grammar (reusing the shared lexer; ``#`` comments)::

    expr    := 'let' IDENT '=' expr 'in' expr
             | 'if' expr 'then' expr 'else' expr
             | 'fun' IDENT '(' IDENT ':' type ')' ':' type '=' expr
               'in' expr                         -- recursive function
             | 'fn' '(' IDENT ':' type ')' '->' expr      -- abstraction
             | sequence
    sequence := application (';' application)*   -- seq_terms
    application := atom atom*                    -- left-assoc application
    atom    := '(' ')' | INT | STRING | 'true' | 'false' | IDENT
             | '@' IDENT ['(' literal (',' literal)* ')']  -- event
             | '!' IDENT [atom]                  -- send (optional payload)
             | '?' IDENT [':' type]              -- recv
             | 'offer' '{' IDENT '->' expr ('|' IDENT '->' expr)* '}'
             | 'open' (IDENT|INT) ['with' IDENT] '{' expr '}'
             | 'frame' IDENT '{' expr '}'
             | '(' expr ')'
    type    := 'unit' | 'bool' | 'int' | 'str'
             | '(' type ')' | type '->' type     -- pure arrows

Examples::

    open 1 with phi {
        !Req ;
        offer { CoBo -> !Pay | NoAv -> () }
    }

    fun serve(u: unit): unit =
        offer { go -> @tick ; !ack ; serve () | stop -> () }
    in serve ()

Keywords (``let``/``if``/``fun``/… ) are contextual: the shared lexer
emits them as plain identifiers and this parser gives them meaning, so
they remain usable as channel names after ``!``/``?``.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import ParseError
from repro.lam.syntax import (App, Evt, Fix, If, Lam, LamTerm, Let, Lit,
                              Offer, OpenSession, RecvT, SendT,
                              UNIT_VALUE, Var, Within, seq_terms)
from repro.lam.types import BOOL, INT, STR, TFun, Type, UNIT
from repro.core.syntax import EPSILON
from repro.lang.lexer import Token, tokenize

#: Identifier spellings this parser treats as keywords (contextually).
_KEYWORDS = frozenset({"let", "in", "if", "then", "else", "fun", "fn",
                       "offer", "true", "false"})

_BASE_TYPES = {"unit": UNIT, "bool": BOOL, "int": INT, "str": STR}


def parse_program(source: str,
                  policies: Mapping[str, object] | None = None) -> LamTerm:
    """Parse a λ-program."""
    parser = _LamParser(tokenize(source), dict(policies or {}))
    term = parser.expr()
    parser.expect("EOF")
    return term


class _LamParser:
    def __init__(self, tokens: list[Token],
                 policies: dict[str, object]) -> None:
        self._tokens = tokens
        self._index = 0
        self._policies = policies

    # -- token plumbing ------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._index + ahead,
                                len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} "
                             f"({token.text!r})", token.line, token.column)
        return self.advance()

    def expect_word(self, word: str) -> Token:
        token = self.peek()
        if not self.at_word(word):
            raise ParseError(f"expected {word!r}, found {token.text!r}",
                             token.line, token.column)
        return self.advance()

    def at_word(self, word: str) -> bool:
        token = self.peek()
        return (token.kind in ("IDENT", "OPEN", "WITH", "FRAME", "MU",
                               "EPS")
                and token.text == word)

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- expressions ---------------------------------------------------

    def expr(self) -> LamTerm:
        if self.at_word("let"):
            return self._let()
        if self.at_word("if"):
            return self._if()
        if self.at_word("fun"):
            return self._fun()
        if self.at_word("fn"):
            return self._fn()
        return self._sequence()

    def _let(self) -> LamTerm:
        self.expect_word("let")
        name = self.expect("IDENT").text
        self.expect("=")
        bound = self.expr()
        self.expect_word("in")
        body = self.expr()
        return Let(name, bound, body)

    def _if(self) -> LamTerm:
        self.expect_word("if")
        condition = self.expr()
        self.expect_word("then")
        then = self.expr()
        self.expect_word("else")
        orelse = self.expr()
        return If(condition, then, orelse)

    def _fun(self) -> LamTerm:
        self.expect_word("fun")
        fun_name = self.expect("IDENT").text
        self.expect("(")
        param = self.expect("IDENT").text
        self.expect(":")
        annotation = self._type()
        self.expect(")")
        self.expect(":")
        result = self._type()
        self.expect("=")
        body = self.expr()
        self.expect_word("in")
        rest = self.expr()
        return Let(fun_name,
                   Fix(fun_name, param, annotation, result, body), rest)

    def _fn(self) -> LamTerm:
        self.expect_word("fn")
        self.expect("(")
        param = self.expect("IDENT").text
        self.expect(":")
        annotation = self._type()
        self.expect(")")
        self.expect("->")
        body = self.expr()
        return Lam(param, annotation, body)

    def _sequence(self) -> LamTerm:
        steps = [self._application()]
        while self.peek().kind == ";":
            self.advance()
            steps.append(self._application())
        if len(steps) == 1:
            return steps[0]
        return seq_terms(*steps)

    def _application(self) -> LamTerm:
        term = self._atom()
        while self._starts_atom():
            term = App(term, self._atom())
        return term

    def _starts_atom(self) -> bool:
        token = self.peek()
        if token.kind in ("INT", "FLOAT", "STRING", "@", "!", "?", "("):
            return True
        if token.kind in ("OPEN", "FRAME"):
            return True
        if token.kind == "IDENT":
            return token.text not in (_KEYWORDS - {"true", "false",
                                                   "offer"})
        return False

    def _atom(self) -> LamTerm:
        token = self.peek()
        if token.kind == "(":
            self.advance()
            if self.peek().kind == ")":
                self.advance()
                return UNIT_VALUE
            inner = self.expr()
            self.expect(")")
            return inner
        if token.kind == "INT":
            self.advance()
            return Lit(int(token.text))
        if token.kind == "STRING":
            self.advance()
            return Lit(token.text)
        if token.kind == "@":
            return self._event()
        if token.kind == "!":
            return self._send()
        if token.kind == "?":
            return self._recv()
        if token.kind == "OPEN":
            return self._open()
        if token.kind == "FRAME":
            return self._frame()
        if self.at_word("true"):
            self.advance()
            return Lit(True)
        if self.at_word("false"):
            self.advance()
            return Lit(False)
        if self.at_word("offer"):
            return self._offer()
        if token.kind == "IDENT":
            self.advance()
            return Var(token.text)
        raise self.error(f"expected an expression, found {token.kind} "
                         f"({token.text!r})")

    def _event(self) -> LamTerm:
        self.expect("@")
        name = self.expect("IDENT").text
        payload: list[object] = []
        if self.peek().kind == "(":
            self.advance()
            payload.append(self._literal())
            while self.peek().kind == ",":
                self.advance()
                payload.append(self._literal())
            self.expect(")")
        return Evt(name, tuple(payload))

    def _literal(self) -> object:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return int(token.text)
        if token.kind == "FLOAT":
            self.advance()
            return float(token.text)
        if token.kind in ("STRING", "IDENT"):
            self.advance()
            return token.text
        raise self.error(f"expected a literal, found {token.kind}")

    def _send(self) -> LamTerm:
        self.expect("!")
        channel = self.expect("IDENT").text
        if self._starts_atom():
            return SendT(channel, self._atom())
        return SendT(channel, UNIT_VALUE)

    def _recv(self) -> LamTerm:
        self.expect("?")
        channel = self.expect("IDENT").text
        annotation: Type = UNIT
        if self.peek().kind == ":":
            self.advance()
            annotation = self._type()
        return RecvT(channel, annotation)

    def _offer(self) -> LamTerm:
        self.expect_word("offer")
        self.expect("{")
        branches = [self._offer_branch()]
        while self.peek().kind == "|":
            self.advance()
            branches.append(self._offer_branch())
        self.expect("}")
        return Offer(tuple(branches))

    def _offer_branch(self) -> tuple[str, LamTerm]:
        channel = self.expect("IDENT").text
        self.expect("->")
        return channel, self.expr()

    def _open(self) -> LamTerm:
        self.expect("OPEN")
        token = self.peek()
        if token.kind not in ("IDENT", "INT"):
            raise self.error("expected a request identifier")
        request_id = self.advance().text
        policy: object | None = None
        if self.peek().kind == "WITH":
            self.advance()
            policy = self._policy_ref()
        self.expect("{")
        body = self.expr()
        self.expect("}")
        return OpenSession(request_id, policy, body)

    def _frame(self) -> LamTerm:
        self.expect("FRAME")
        policy = self._policy_ref()
        self.expect("{")
        body = self.expr()
        self.expect("}")
        return Within(policy, body)

    def _policy_ref(self) -> object:
        token = self.expect("IDENT")
        try:
            return self._policies[token.text]
        except KeyError:
            raise ParseError(f"unknown policy {token.text!r} (not in the "
                             "parse environment)", token.line,
                             token.column) from None

    # -- types -----------------------------------------------------------

    def _type(self) -> Type:
        left = self._type_atom()
        if self.peek().kind == "->":
            self.advance()
            right = self._type()
            return TFun(left, EPSILON, right)
        return left

    def _type_atom(self) -> Type:
        token = self.peek()
        if token.kind == "(":
            self.advance()
            inner = self._type()
            self.expect(")")
            return inner
        if token.kind == "IDENT" and token.text in _BASE_TYPES:
            self.advance()
            return _BASE_TYPES[token.text]
        raise self.error(f"expected a type, found {token.text!r}")

"""Effect algebra: joining branch effects into Definition-1 form.

The type-and-effect system composes effects sequentially (``H1 · H2``)
and must *join* the effects of conditional branches.  Definition 1 has
no unguarded sum — choices are communication-guarded — so the join is a
normalisation problem:

1. **distribute** sequential composition over choices,
   ``(Σ a_i.H_i) · H  ⇒  Σ a_i.(H_i · H)`` (and likewise for ``⊕``),
   so that each branch exposes its guard;
2. **merge** two choices of the same kind by concatenating their
   branches (our semantics allows several branches on one channel, so
   no further bookkeeping is needed);
3. identical effects join trivially; anything else — one branch pure,
   an event-guarded branch, mixed ⊕/Σ — is *not expressible* in the
   calculus and raises :class:`EffectJoinError` with a pinpointed
   explanation (the λ-calculus restriction mirroring the paper's
   "internal choice is always guarded by output actions …").
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.core.syntax import (Epsilon, EventNode, ExternalChoice, Framing,
                               HistoryExpression, InternalChoice, Mu,
                               Request, Seq, Var, seq)


class EffectJoinError(ReproError):
    """The effects of two conditional branches cannot be joined into the
    guarded-choice form Definition 1 requires."""


def distribute(term: HistoryExpression) -> HistoryExpression:
    """Push sequential composition inside choices (semantics-preserving:
    both sides have identical transitions).

    ``(Σ a_i.H_i) · H`` and ``(⊕ ā_i.H_i) · H`` become choices whose
    branch continuations carry ``H``; the head of the result is then
    always ``ε``, a choice, an event, a framing, a request or a ``μ``.
    """
    if isinstance(term, Seq):
        head = distribute(term.first)
        tail = term.second
        if isinstance(head, ExternalChoice):
            return ExternalChoice(tuple(
                (label, seq(cont, tail)) for label, cont in head.branches))
        if isinstance(head, InternalChoice):
            return InternalChoice(tuple(
                (label, seq(cont, tail)) for label, cont in head.branches))
        if isinstance(head, Mu):
            # A (tail-recursive) loop never terminates into `tail`;
            # well-formed terms only produce this with tail == ε, which
            # seq() already normalised away.  Anything else is caught by
            # the well-formedness check downstream.
            return seq(head, tail)
        return seq(head, tail)
    return term


def join(left: HistoryExpression,
         right: HistoryExpression) -> HistoryExpression:
    """The effect of ``if … then left else right``.

    Either the branches are identical, or both distribute to choices of
    the same kind (their union is the join).  Everything else raises
    :class:`EffectJoinError`.
    """
    if left == right:
        return left
    left_d = distribute(left)
    right_d = distribute(right)
    if left_d == right_d:
        return left_d
    if isinstance(left_d, ExternalChoice) and \
            isinstance(right_d, ExternalChoice):
        return ExternalChoice(left_d.branches + right_d.branches)
    if isinstance(left_d, InternalChoice) and \
            isinstance(right_d, InternalChoice):
        return InternalChoice(left_d.branches + right_d.branches)
    raise EffectJoinError(
        "conditional branches must both be communication-guarded (or "
        "have identical effects); got "
        f"{_describe(left_d)} vs {_describe(right_d)}")


def _describe(term: HistoryExpression) -> str:
    if isinstance(term, Epsilon):
        return "a pure branch (ε)"
    if isinstance(term, ExternalChoice):
        return "an input-guarded branch"
    if isinstance(term, InternalChoice):
        return "an output-guarded branch"
    if isinstance(term, (Seq,)):
        return f"a branch starting with {_describe(term.first)}"
    if isinstance(term, EventNode):
        return f"an event-guarded branch ({term.event})"
    if isinstance(term, Framing):
        return "a framing-guarded branch"
    if isinstance(term, Request):
        return "a session-guarded branch"
    if isinstance(term, Mu):
        return "a recursive branch"
    if isinstance(term, Var):
        return "a bare recursive call"
    return f"a {type(term).__name__} branch"

"""Policy-level lint rules: usage-automaton sanity.

* ``SUS010 unreachable-state`` — a non-offending state no run can reach.
* ``SUS011 vacuous-policy`` — no offending state is reachable under the
  declared instantiation: the policy can never be violated, so framing
  with it is dead weight (and usually a specification mistake).
* ``SUS012 overlapping-edges`` — two unconditional edges from one state
  on the same event with different targets (harmless nondeterminism at
  run time, but usually an authoring slip).

Reachability is decided on the automaton graph with a three-valued guard
evaluation under the instantiated parameters: a guard that is *provably*
false for every event (e.g. membership in an empty parameter set) kills
its edge, anything unknown keeps it.  The over-approximation makes the
unreachability verdicts sound: a state these rules call unreachable is
unreachable under every trace.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Mapping

from repro.policies.guards import (And, Compare, Guard, Not, Or, TrueGuard)
from repro.policies.usage_automata import Policy, UsageAutomaton
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY

#: Sentinel for "value not statically known" in the three-valued guard
#: evaluation.
_UNKNOWN = object()


def _term_value(term, env: Mapping[str, object]) -> object:
    from repro.policies.guards import Const, Name
    if isinstance(term, Const):
        return term.constant
    if isinstance(term, Name):
        return env.get(term.name, _UNKNOWN)
    return _UNKNOWN


def guard_truth(guard: Guard, env: Mapping[str, object]) -> bool | None:
    """Kleene evaluation of *guard* under the partial environment *env*
    (policy parameters known, binders and quantified variables not):
    ``True``/``False`` when decided, ``None`` when unknown."""
    if isinstance(guard, TrueGuard):
        return True
    if isinstance(guard, Not):
        inner = guard_truth(guard.operand, env)
        return None if inner is None else not inner
    if isinstance(guard, And):
        left = guard_truth(guard.left, env)
        right = guard_truth(guard.right, env)
        if left is False or right is False:
            return False
        if left is True and right is True:
            return True
        return None
    if isinstance(guard, Or):
        left = guard_truth(guard.left, env)
        right = guard_truth(guard.right, env)
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        return None
    if isinstance(guard, Compare):
        left = _term_value(guard.left, env)
        right = _term_value(guard.right, env)
        if left is not _UNKNOWN and right is not _UNKNOWN:
            try:
                return Compare._OPS[guard.op](left, right)
            except TypeError:
                # Mirrors Compare.evaluate: incomparable values never
                # satisfy the guard.
                return False
        # Membership in a known empty collection is decidable even with
        # an unknown left operand — the case that makes instantiations
        # like ``blacklist(bl = {})`` provably vacuous.
        if guard.op in ("in", "notin") and right is not _UNKNOWN:
            try:
                empty = len(right) == 0
            except TypeError:
                return None
            if empty:
                return guard.op == "notin"
        return None
    return None


def viable_edges(automaton: UsageAutomaton,
                 env: Mapping[str, object]):
    """The edges whose guard is not provably false under *env*."""
    return tuple(edge for edge in automaton.edges
                 if guard_truth(edge.pattern.guard, env) is not False)


def reachable_states(policy: Policy) -> frozenset[str]:
    """States reachable from the initial one over viable edges."""
    automaton = policy.automaton
    env = policy.environment()
    edges = viable_edges(automaton, env)
    seen = {automaton.initial}
    frontier = deque([automaton.initial])
    while frontier:
        state = frontier.popleft()
        for edge in edges:
            if edge.source == state and edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return frozenset(seen)


def _policies(ctx: LintContext):
    for decl in ctx.policy_declarations:
        if isinstance(decl.value, Policy):
            yield decl, decl.value


@_REGISTRY.rule("SUS010", "unreachable-state", Severity.WARNING,
                "a non-offending automaton state no run can reach")
def unreachable_state(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS010")
    for decl, policy in _policies(ctx):
        automaton = policy.automaton
        reachable = reachable_states(policy)
        dead = sorted(automaton.states - reachable - automaton.offending)
        if not dead:
            continue
        yield rule.diagnostic(
            f"policy {decl.name!r}: state(s) {', '.join(dead)} of "
            f"automaton {automaton.name!r} are unreachable",
            span=decl.span, declaration=decl.name,
            hint="remove the states or fix the guards/edges leading to "
                 "them")


@_REGISTRY.rule("SUS011", "vacuous-policy", Severity.WARNING,
                "no offending state is reachable: the policy can never "
                "be violated")
def vacuous_policy(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS011")
    for decl, policy in _policies(ctx):
        automaton = policy.automaton
        if not automaton.offending:
            offending = "declares no offending state"
        elif reachable_states(policy) & automaton.offending:
            continue
        else:
            offending = ("cannot reach its offending state(s) "
                         + ", ".join(sorted(automaton.offending))
                         + " under this instantiation")
        yield rule.diagnostic(
            f"policy {decl.name!r} is vacuous: automaton "
            f"{automaton.name!r} {offending}",
            span=decl.span, declaration=decl.name,
            hint="every trace satisfies it — check the instantiation "
                 "arguments (an empty blacklist?) or the automaton edges")


@_REGISTRY.rule("SUS012", "overlapping-edges", Severity.INFO,
                "two unconditional edges from one state on the same "
                "event lead to different targets")
def overlapping_edges(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS012")
    for decl, policy in _policies(ctx):
        automaton = policy.automaton
        reported: set[tuple] = set()
        for state in sorted(automaton.states):
            edges = automaton.edges_from(state)
            for index, first in enumerate(edges):
                for second in edges[index + 1:]:
                    if first.target == second.target:
                        continue
                    if first.pattern.event != second.pattern.event:
                        continue
                    if (first.pattern.binders and second.pattern.binders
                            and len(first.pattern.binders)
                            != len(second.pattern.binders)):
                        continue
                    # Only *certain* overlap is reported: both guards
                    # must hold for every matching event.
                    if first.pattern.guard != second.pattern.guard:
                        continue
                    if guard_truth(first.pattern.guard,
                                   policy.environment()) is not True:
                        continue
                    key = (state, first.pattern.event,
                           frozenset((first.target, second.target)))
                    if key in reported:
                        continue
                    reported.add(key)
                    yield rule.diagnostic(
                        f"policy {decl.name!r}: state {state!r} has "
                        f"overlapping edges on event "
                        f"{first.pattern.event!r} to "
                        f"{first.target!r} and {second.target!r}",
                        span=decl.span, declaration=decl.name,
                        hint="add distinguishing guards, or merge the "
                             "targets if the nondeterminism is "
                             "intentional")

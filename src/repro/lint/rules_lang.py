"""Language-level lint rules: declaration hygiene.

* ``SUS001 unused-policy`` — a declared policy no term ever attaches.
* ``SUS002 duplicate-declaration`` — a name redeclared in the same
  namespace, silently shadowing the earlier declaration.
* ``SUS003 unservable-service`` — a service no request of the module
  could ever select (no session body is compliant with it).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.syntax import policies_of
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY


@_REGISTRY.rule("SUS001", "unused-policy", Severity.WARNING,
                "policy declared but never attached to a session or "
                "framing")
def unused_policy(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS001")
    used: set[object] = set()
    for _, term in ctx.terms():
        used |= policies_of(term)
    for decl in ctx.policy_declarations:
        if decl.value in used:
            continue
        yield rule.diagnostic(
            f"policy {decl.name!r} is declared but never used",
            span=decl.span, declaration=decl.name,
            hint=f"attach it with `open ... with {decl.name} {{ ... }}` or "
                 f"`frame {decl.name} {{ ... }}`, or remove the declaration")


@_REGISTRY.rule("SUS002", "duplicate-declaration", Severity.ERROR,
                "a name redeclared in the same namespace shadows the "
                "earlier declaration")
def duplicate_declaration(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS002")
    first_seen: dict[tuple[str, str], object] = {}
    for decl in ctx.declarations:
        # Policies live in their own namespace; clients, services and
        # λ-programs share one (``Module.term`` resolves across both
        # dicts, so a cross-kind clash is just as much a shadowing).
        namespace = "policy" if decl.is_policy else "term"
        key = (namespace, decl.name)
        earlier = first_seen.get(key)
        if earlier is None:
            first_seen[key] = decl
            continue
        where = ("" if earlier.span is None
                 else f" (first declared at {earlier.span})")
        yield rule.diagnostic(
            f"{decl.kind} {decl.name!r} shadows an earlier "
            f"{earlier.kind} declaration of the same name{where}",
            span=decl.span, declaration=decl.name,
            hint="rename one of the declarations; only the later one is "
                 "kept")


@_REGISTRY.rule("SUS003", "unservable-service", Severity.INFO,
                "no request in the module could select this service "
                "(no session body is compliant with it)")
def unservable_service(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS003")
    bodies = [info.body for _, info in ctx.request_occurrences]
    if not bodies:
        return
    for decl, term in ctx.terms():
        if not decl.is_service:
            continue
        verdicts = [ctx.compliant(body, term) for body in bodies]
        if any(verdict is not False for verdict in verdicts):
            continue
        yield rule.diagnostic(
            f"service {decl.name!r} can serve no request of this module: "
            f"none of the {len(bodies)} session bodies is compliant with "
            "it",
            span=decl.span, declaration=decl.name,
            hint="the planner will never select it; adjust its contract "
                 "or drop it from the repository")

"""Contract-level lint rules: communication that can never happen.

* ``SUS020 dead-external-branch`` — an input branch in a *session body*
  whose channel no repository service can ever emit.  Computed on the
  communication skeleton the projection ``H!`` keeps (access events,
  framings and nested sessions are invisible to the enclosing session)
  against the union of the services' projected outputs — the channels
  that can ever appear in a service-side observable ready set.  An
  input outside that set can synchronise with nobody, whichever service
  the plan picks: the branch is dead in every plan.

The rule deliberately does *not* flag extra inputs on the service side:
the repository is open-ended (services "are always available for
joining sessions" with arbitrary future clients), so a service offering
more inputs than today's clients use is idiomatic, not a defect.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY


@_REGISTRY.rule("SUS020", "dead-external-branch", Severity.WARNING,
                "an external-choice input in a session body that no "
                "repository service can ever emit")
def dead_external_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS020")
    emittable = ctx.service_outputs
    reported: set[tuple[str, str]] = set()
    for decl, info in ctx.request_occurrences:
        for channel in ctx.session_inputs(info.body):
            if channel in emittable or (decl.name, channel) in reported:
                continue
            reported.add((decl.name, channel))
            yield rule.diagnostic(
                f"input ?{channel} in the request {info.request!r} body "
                f"of {decl.name!r} is dead: no declared service ever "
                f"emits !{channel}",
                span=ctx.channel_span(decl, "?", channel) or decl.span,
                declaration=decl.name,
                hint="the branch can never be taken — remove it, or "
                     f"publish a service that outputs !{channel}")

"""Contract-level lint rules: communication that can never happen.

* ``SUS020 dead-external-branch`` — an input branch in a *session body*
  whose channel no repository service can ever emit.  Computed on the
  communication skeleton the projection ``H!`` keeps (access events,
  framings and nested sessions are invisible to the enclosing session)
  against the union of the services' projected outputs — the channels
  that can ever appear in a service-side observable ready set.  An
  input outside that set can synchronise with nobody, whichever service
  the plan picks: the branch is dead in every plan.

The rule deliberately does *not* flag extra inputs on the service side:
the repository is open-ended (services "are always available for
joining sessions" with arbitrary future clients), so a service offering
more inputs than today's clients use is idiomatic, not a defect.

Two canonicalization advisories ride on the same analysis
(:mod:`repro.canon`); both are informational — duplicates and redundant
states are hygiene, not defects:

* ``SUS050 duplicate-contract`` — two declared services are canonically
  bisimilar (identical canonical forms, compared exactly, never by
  fingerprint alone): every client compliant with one is compliant with
  the other, so the later declaration is a duplicate of the earlier
  twin.
* ``SUS051 non-minimal-contract`` — a service's bisimulation quotient
  is strictly smaller than its LTS: the contract as written carries
  redundant (bisimilar) states.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY


@_REGISTRY.rule("SUS020", "dead-external-branch", Severity.WARNING,
                "an external-choice input in a session body that no "
                "repository service can ever emit")
def dead_external_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS020")
    emittable = ctx.service_outputs
    reported: set[tuple[str, str]] = set()
    for decl, info in ctx.request_occurrences:
        for channel in ctx.session_inputs(info.body):
            if channel in emittable or (decl.name, channel) in reported:
                continue
            reported.add((decl.name, channel))
            yield rule.diagnostic(
                f"input ?{channel} in the request {info.request!r} body "
                f"of {decl.name!r} is dead: no declared service ever "
                f"emits !{channel}",
                span=ctx.channel_span(decl, "?", channel) or decl.span,
                declaration=decl.name,
                hint="the branch can never be taken — remove it, or "
                     f"publish a service that outputs !{channel}")


def _service_canonical_forms(ctx: LintContext):
    """(declaration, canonical form) per analysable service, in
    declaration order; services whose canonicalization fails (state
    blowup, malformed term) are silently skipped — advisory rules must
    not turn an analysis limit into a finding."""
    from repro.canon import canonicalize
    from repro.core.errors import ReproError
    forms = []
    for decl, term in ctx.terms():
        if not decl.is_service:
            continue
        try:
            forms.append((decl, canonicalize(term)))
        except (ReproError, TypeError, RecursionError):
            continue
    return forms


@_REGISTRY.rule("SUS050", "duplicate-contract", Severity.INFO,
                "two declared services are canonically bisimilar — the "
                "later one duplicates the earlier twin")
def duplicate_contract(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS050")
    first_with_key: dict[tuple, str] = {}
    for decl, form in _service_canonical_forms(ctx):
        twin = first_with_key.get(form.key)
        if twin is None:
            first_with_key[form.key] = decl.name
            continue
        yield rule.diagnostic(
            f"service {decl.name!r} is canonically bisimilar to "
            f"{twin!r}: every client compliant with one is compliant "
            f"with the other",
            span=decl.span,
            declaration=decl.name,
            hint=f"the contracts are interchangeable — reuse {twin!r} "
                 f"(or make the behavioural difference explicit)")


@_REGISTRY.rule("SUS051", "non-minimal-contract", Severity.INFO,
                "a service contract with redundant (bisimilar) states: "
                "its quotient is strictly smaller than its LTS")
def non_minimal_contract(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS051")
    for decl, form in _service_canonical_forms(ctx):
        if form.n_blocks >= form.n_source_states:
            continue
        yield rule.diagnostic(
            f"service {decl.name!r} is non-minimal: {form.n_source_states} "
            f"reachable state(s) collapse to {form.n_blocks} under "
            f"bisimulation",
            span=decl.span,
            declaration=decl.name,
            hint="equivalent branches or unrollings can be merged "
                 "without changing any compliance verdict")

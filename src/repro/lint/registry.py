"""The lint rule registry.

A :class:`Rule` packages a stable code (``SUS0xx``), a kebab-case name,
a default severity, a one-line description and the checker itself — a
callable from a :class:`~repro.lint.context.LintContext` to an iterable
of :class:`~repro.lint.diagnostics.Diagnostic`.

Rules register themselves with the :func:`rule` decorator at import
time; :func:`default_registry` imports the built-in rule modules once
and returns the shared registry.  Registries support per-rule
enable/disable plus one-shot ``select``/``ignore`` filters, which is
what the CLI's ``--select``/``--ignore`` flags and ``check``'s
errors-only pass use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.errors import ReproError
from repro.lint.diagnostics import Diagnostic, Severity

#: A rule checker: context in, diagnostics out.
Checker = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    severity: Severity
    description: str
    check: Checker

    def diagnostic(self, message: str, *, span=None, declaration=None,
                   hint=None, severity: Severity | None = None) -> Diagnostic:
        """A diagnostic carrying this rule's code (and, by default, its
        severity) — the one constructor rule bodies should use."""
        return Diagnostic(self.code,
                          self.severity if severity is None else severity,
                          message, span=span, declaration=declaration,
                          hint=hint)


class RuleRegistry:
    """A mutable collection of rules with per-rule enablement."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}
        self._disabled: set[str] = set()

    # -- registration -------------------------------------------------------

    def register(self, new: Rule) -> Rule:
        if new.code in self._rules:
            raise ReproError(f"lint rule code {new.code!r} registered twice")
        if any(existing.name == new.name
               for existing in self._rules.values()):
            raise ReproError(f"lint rule name {new.name!r} registered twice")
        self._rules[new.code] = new
        return new

    def rule(self, code: str, name: str, severity: Severity,
             description: str) -> Callable[[Checker], Rule]:
        """Decorator form of :meth:`register`::

            @registry.rule("SUS001", "unused-policy", Severity.WARNING,
                           "policy declared but never referenced")
            def unused_policy(ctx):
                ...
        """
        def wrap(check: Checker) -> Rule:
            return self.register(Rule(code, name, severity, description,
                                      check))
        return wrap

    # -- enablement ---------------------------------------------------------

    def disable(self, code: str) -> None:
        """Disable *code* for subsequent runs (unknown codes rejected)."""
        self._resolve(code)
        self._disabled.add(code)

    def enable(self, code: str) -> None:
        """Re-enable a previously :meth:`disable`-d rule."""
        self._resolve(code)
        self._disabled.discard(code)

    def is_enabled(self, code: str) -> bool:
        return code in self._rules and code not in self._disabled

    # -- lookup -------------------------------------------------------------

    def get(self, code: str) -> Rule:
        """The rule registered under *code* (:class:`ReproError` if
        unknown)."""
        return self._resolve(code)

    def _resolve(self, code: str) -> Rule:
        found = self._rules.get(code)
        if found is None:
            known = ", ".join(sorted(self._rules))
            raise ReproError(f"unknown lint rule {code!r} (known: {known})")
        return found

    def rules(self, *, select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None,
              min_severity: Severity | None = None) -> tuple[Rule, ...]:
        """The enabled rules, in code order, optionally narrowed to a
        ``select`` set, minus an ``ignore`` set, at or above
        ``min_severity``."""
        wanted = (None if select is None
                  else {self._resolve(code).code for code in select})
        unwanted = (set() if ignore is None
                    else {self._resolve(code).code for code in ignore})
        picked = []
        for code in sorted(self._rules):
            if code in self._disabled or code in unwanted:
                continue
            if wanted is not None and code not in wanted:
                continue
            found = self._rules[code]
            if min_severity is not None and found.severity < min_severity:
                continue
            picked.append(found)
        return tuple(picked)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules())

    def __len__(self) -> int:
        return len(self._rules)


#: The process-wide registry the built-in rules attach to.
DEFAULT_REGISTRY = RuleRegistry()

_LOADED = False


def default_registry() -> RuleRegistry:
    """The registry holding all built-in rules (loaded on first use)."""
    global _LOADED
    if not _LOADED:
        # Importing the rule modules registers their rules as a side
        # effect; the flag keeps this idempotent and cheap.
        from repro.lint import (rules_contracts, rules_lang,  # noqa: F401
                                rules_network, rules_policies,
                                rules_staticcheck)
        _LOADED = True
    return DEFAULT_REGISTRY

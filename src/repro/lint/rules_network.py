"""Network-level lint rules: requests and framings that cannot work.

* ``SUS030 doomed-request`` — a request no declared service can serve:
  every published contract fails compliance against the session body,
  so no valid plan can exist for the enclosing client (Theorem 1 makes
  this decidable per binding; the planner would enumerate and reject
  every candidate at verification time — lint says so up front).
* ``SUS031 unclosed-residual`` — a declared term contains a *run-time*
  residual node (``close_{r,φ}`` or ``Mφ``): a session or policy
  framing opened but never closed.  The parser cannot produce these,
  but programmatically-assembled modules can, and they break the
  static analysis's balanced-framing assumptions.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.syntax import ClosePending, FrameClosePending
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY


@_REGISTRY.rule("SUS030", "doomed-request", Severity.ERROR,
                "no declared service is compliant with the request's "
                "session body: no valid plan can serve it")
def doomed_request(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS030")
    services = sum(1 for decl in ctx.term_declarations if decl.is_service)
    for decl, info in ctx.request_occurrences:
        if ctx.servable(info.body):
            continue
        detail = (f"none of the {services} declared service(s) is "
                  "compliant with its session body"
                  if services else "the module declares no services")
        yield rule.diagnostic(
            f"request {info.request!r} in {decl.name!r} is doomed: "
            f"{detail}",
            span=ctx.request_span(decl, info.request) or decl.span,
            declaration=decl.name,
            hint="publish a service whose contract matches the session "
                 "body, or fix the body — verification is guaranteed to "
                 "fail otherwise")


@_REGISTRY.rule("SUS031", "unclosed-residual", Severity.ERROR,
                "a declared term contains a run-time residual: a session "
                "or framing opened but never closed")
def unclosed_residual(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS031")
    for decl, term in ctx.terms():
        for node in term.walk():
            if isinstance(node, ClosePending):
                what = (f"session close_{{{node.request}}} pending "
                        "without its open")
            elif isinstance(node, FrameClosePending):
                what = (f"framing close ]{node.policy}[ pending without "
                        "its open")
            else:
                continue
            yield rule.diagnostic(
                f"{decl.kind} {decl.name!r} contains a run-time "
                f"residual: {what}",
                span=decl.span, declaration=decl.name,
                hint="declared behaviours must open and close sessions "
                     "and framings in balanced pairs; use "
                     "`open ... { ... }` / `frame ... { ... }` terms")

"""SARIF-lite JSON rendering of lint results.

The shape follows SARIF 2.1.0's ``runs[].tool`` / ``runs[].results``
skeleton — rule metadata under the tool driver, one result per
diagnostic with a ``ruleId``, a ``level`` and a physical location —
without the full schema's envelope of optional baggage, so the output
stays diff-able and trivially consumable by scripts.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import RuleRegistry, default_registry

#: SARIF levels per severity.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning",
           Severity.INFO: "note"}


def to_sarif(results: Mapping[str, Iterable[Diagnostic]],
             registry: RuleRegistry | None = None) -> dict:
    """A SARIF-lite document for per-file diagnostics.

    *results* maps each linted path (artifact URI) to its diagnostics.
    """
    registry = registry or default_registry()
    rules = [{"id": rule.code,
              "name": rule.name,
              "defaultConfiguration": {"level": _LEVELS[rule.severity]},
              "shortDescription": {"text": rule.description}}
             for rule in registry.rules()]
    sarif_results = []
    for path, diagnostics in results.items():
        for diagnostic in diagnostics:
            entry: dict = {
                "ruleId": diagnostic.code,
                "level": _LEVELS[diagnostic.severity],
                "message": {"text": diagnostic.message},
            }
            if diagnostic.hint:
                entry["fixes"] = [{"description":
                                   {"text": diagnostic.hint}}]
            location: dict = {"physicalLocation":
                              {"artifactLocation": {"uri": path}}}
            if diagnostic.span is not None:
                location["physicalLocation"]["region"] = {
                    "startLine": diagnostic.span.line,
                    "startColumn": diagnostic.span.column,
                    "endLine": diagnostic.span.end_line,
                    "endColumn": diagnostic.span.end_column,
                }
            if diagnostic.declaration:
                location["logicalLocations"] = [
                    {"name": diagnostic.declaration}]
            entry["locations"] = [location]
            sarif_results.append(entry)
    return {
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "suslint", "rules": rules}},
            "results": sarif_results,
        }],
    }


def render_json(results: Mapping[str, Iterable[Diagnostic]],
                registry: RuleRegistry | None = None) -> str:
    """:func:`to_sarif` serialised with stable indentation."""
    return json.dumps(to_sarif(results, registry), indent=2,
                      sort_keys=False)

"""Lint diagnostics: what a rule reports and how it is rendered.

A :class:`Diagnostic` couples a stable rule code (``SUS0xx``), a
severity, a human-readable message, an optional source :class:`Span`
(threaded from the lexer through :mod:`repro.lang.module` declarations)
and an optional fix-it hint.  Diagnostics are plain values: the engine
collects them, the CLI renders them as text or SARIF-lite JSON
(:mod:`repro.lint.sarif`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.lang.lexer import Span


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally
    (``severity >= Severity.WARNING``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """The lowercase spelling used in reports."""
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"error"``/``"warning"``/``"info"`` (case-insensitive)."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ReproError(
                f"unknown severity {text!r} (expected error, warning or "
                "info)") from None


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``declaration`` names the module declaration the finding anchors to
    (when any); ``span`` is the most precise source region known — the
    offending sub-term when the rule can locate it, the declaration name
    otherwise, or ``None`` for modules built programmatically.
    """

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    declaration: str | None = None
    hint: str | None = None

    def location(self, path: str | None = None) -> str:
        """``path:line:col`` (each part only when known)."""
        where = path or "<module>"
        if self.span is None:
            return where
        return f"{where}:{self.span.line}:{self.span.column}"

    def format(self, path: str | None = None) -> str:
        """The canonical one-to-two-line text rendering."""
        head = (f"{self.location(path)}: {self.severity.label} "
                f"{self.code}: {self.message}")
        if self.declaration:
            head += f" [{self.declaration}]"
        if self.hint:
            head += f"\n    hint: {self.hint}"
        return head

    def to_json(self, path: str | None = None) -> dict:
        """A flat JSON-friendly rendering (used by tests and tooling;
        the SARIF-lite shape lives in :mod:`repro.lint.sarif`)."""
        region = None
        if self.span is not None:
            region = {"startLine": self.span.line,
                      "startColumn": self.span.column,
                      "endLine": self.span.end_line,
                      "endColumn": self.span.end_column}
        return {"code": self.code,
                "severity": self.severity.label,
                "message": self.message,
                "path": path,
                "region": region,
                "declaration": self.declaration,
                "hint": self.hint}


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Stable report order: by position, then code."""
    span = diagnostic.span
    position = (span.line, span.column) if span is not None else (0, 0)
    return (*position, diagnostic.code, diagnostic.message)

"""Static-certification lint rules: plan failures with witnesses.

The SUS04x group surfaces the whole-network abstract interpretation
(:mod:`repro.staticcheck`) through the lint pipeline.  For every client
without a valid plan, the minimal unsatisfiable core computed by
:func:`~repro.staticcheck.plans.explain_no_valid_plan` is translated
into diagnostics with spans on the offending declarations:

* ``SUS040 statically-invalid-plan`` — the security constraint is in
  the core: every plan whose bindings all comply still reaches a policy
  violation.  The message carries the offending history (replayable via
  ``repro analyze``).
* ``SUS041 non-compliant-request-pair`` — one candidate service refuses
  a *doomed* request (one no candidate complies with), with the
  unmatched ready sets of the stuck configuration.  Refusals of
  requests some other candidate can serve are not reported: the planner
  routes around them.
* ``SUS042 unsatisfiable-request`` — a client has no valid plan because
  some request cannot be served at all; the fix-it hint renders the
  whole minimal unsatisfiable core.

The explanations are memoised per lint context (and globally by the
staticcheck layer), so the three rules share one certification pass.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import ReproError
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import DEFAULT_REGISTRY as _REGISTRY
from repro.staticcheck.plans import CoreConstraint, explain_no_valid_plan
from repro.staticcheck.witness import StuckWitness


def _client_reports(ctx: LintContext) -> tuple:
    """``(name, declaration, explanation)`` for every client *without* a
    valid plan, computed once per context and shared by the SUS04x
    rules.  Clients whose certification itself fails (state-space
    blowup, malformed term) are skipped — unknown is never a finding."""
    cached = getattr(ctx, "_staticcheck_reports", None)
    if cached is not None:
        return cached
    declarations = {decl.name: decl for decl in ctx.term_declarations}
    reports = []
    try:
        repository = ctx.module.repository
    except (ReproError, TypeError, ValueError):
        repository = None
    if repository is not None:
        for name, term in ctx.module.clients.items():
            try:
                explanation = explain_no_valid_plan(term, repository,
                                                    location=name)
            except (ReproError, TypeError, ValueError):
                continue
            if explanation is not None:
                reports.append((name, declarations.get(name), explanation))
    ctx._staticcheck_reports = tuple(reports)
    return ctx._staticcheck_reports


@_REGISTRY.rule("SUS040", "statically-invalid-plan", Severity.ERROR,
                "every complete compliant plan of a client reaches a "
                "policy violation")
def statically_invalid_plan(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS040")
    for name, decl, explanation in _client_reports(ctx):
        if not any(constraint.kind == "security"
                   for constraint in explanation.core):
            continue
        witness = explanation.security_witness
        offender = ""
        if witness is not None:
            history = " . ".join(str(label) for label in witness.labels)
            offender = (f": the history {history} violates policy "
                        f"{witness.policy}")
        yield rule.diagnostic(
            f"client {name!r} has no valid plan — every plan whose "
            f"bindings all comply reaches a policy violation{offender}",
            span=None if decl is None else ctx.span_of(decl),
            declaration=name,
            hint="`repro analyze` prints the replayable witness and the "
                 "full unsatisfiable core")


@_REGISTRY.rule("SUS041", "non-compliant-request-pair", Severity.WARNING,
                "a candidate service refuses a request no candidate "
                "complies with")
def non_compliant_request_pair(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS041")
    reported: set[tuple[str, str | None, str]] = set()
    for name, decl, explanation in _client_reports(ctx):
        for constraint in explanation.core:
            if constraint.kind != "compliance" or constraint.compliant:
                continue
            for refusal in constraint.refusals:
                key = (name, constraint.request, refusal.location)
                if key in reported:
                    continue
                reported.add(key)
                span = None
                if decl is not None:
                    span = (ctx.request_span(decl, constraint.request)
                            or ctx.span_of(decl))
                yield rule.diagnostic(
                    f"request {constraint.request} of {name!r} cannot be "
                    f"served by {refusal.location!r}"
                    f"{_refusal_detail(refusal.witness)}",
                    span=span, declaration=name,
                    hint="the stuck configuration replays concretely — "
                         "`repro analyze` prints the synchronisation "
                         "path into it")


@_REGISTRY.rule("SUS042", "unsatisfiable-request", Severity.ERROR,
                "a client has no valid plan because some request cannot "
                "be served at all")
def unsatisfiable_request(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = _REGISTRY.get("SUS042")
    for name, decl, explanation in _client_reports(ctx):
        doomed = [constraint for constraint in explanation.core
                  if constraint.kind == "completeness"
                  or (constraint.kind == "compliance"
                      and not constraint.compliant)]
        if not doomed:
            continue
        requests = ", ".join(sorted({str(constraint.request)
                                     for constraint in doomed}))
        core = " and ".join(_constraint_text(constraint)
                            for constraint in explanation.core)
        yield rule.diagnostic(
            f"client {name!r} has no valid plan: request(s) {requests} "
            "cannot be served by any candidate service",
            span=None if decl is None else ctx.span_of(decl),
            declaration=name,
            hint=f"minimal unsatisfiable core: {core}")


def _refusal_detail(witness: StuckWitness | None) -> str:
    """The first unmatched ready-set pair, rendered inline."""
    if witness is None or not witness.unmatched:
        return ""
    client_set, server_set = witness.unmatched[0]
    return (f": the client insists on {_render_ready(client_set)} but "
            f"the service may present {_render_ready(server_set)}")


def _render_ready(actions) -> str:
    return "{" + ", ".join(sorted(str(action) for action in actions)) + "}"


def _constraint_text(constraint: CoreConstraint) -> str:
    if constraint.kind == "security":
        return "security (the assembled behaviour must stay valid)"
    if constraint.kind == "completeness":
        return (f"completeness(request {constraint.request}: no candidate "
                "service)")
    if constraint.compliant:
        complying = ", ".join(constraint.compliant)
        return (f"compliance(request {constraint.request}: only "
                f"{complying} comply)")
    return (f"compliance(request {constraint.request}: every candidate "
            "refuses)")

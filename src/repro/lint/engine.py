"""The lint driver: run the registered rules over one module.

:func:`lint_module` builds a :class:`~repro.lint.context.LintContext`,
runs every enabled rule, counts per-rule fires in the active
:class:`~repro.observability.metrics.MetricsRegistry` (so lint work
shows up under the CLI's ``--stats``), and returns the diagnostics in
stable report order.
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.module import Module
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity, sort_key
from repro.lint.registry import RuleRegistry, default_registry
from repro.observability import runtime as _telemetry


def lint_module(module: Module, registry: RuleRegistry | None = None, *,
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None,
                min_severity: Severity | None = None,
                engine: str = "onthefly") -> list[Diagnostic]:
    """Run the (selected) lint rules over *module*.

    ``select``/``ignore`` narrow the rule set by code; ``min_severity``
    keeps only rules of at least that default severity (how ``check``
    runs the error rules only).  Diagnostics come back sorted by source
    position, then code.  ``engine`` picks the compliance engine behind
    the pairwise verdicts (see
    :func:`repro.core.compliance.check_compliance`).
    """
    rules = (registry or default_registry()).rules(
        select=select, ignore=ignore, min_severity=min_severity)
    context = LintContext(module, engine=engine)
    tel = _telemetry.active()
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        found = list(rule.check(context))
        if tel is not None:
            tel.metrics.counter("lint.fired", rule=rule.code).inc(
                len(found))
        diagnostics.extend(found)
    if tel is not None:
        tel.metrics.counter("lint.modules").inc()
        for diagnostic in diagnostics:
            tel.metrics.counter(
                "lint.diagnostics",
                severity=diagnostic.severity.label).inc()
    return sorted(diagnostics, key=sort_key)


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The highest severity present, or ``None`` for a clean run."""
    worst: Severity | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity > worst:
            worst = diagnostic.severity
    return worst

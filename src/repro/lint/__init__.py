"""``suslint`` — a diagnostic lint engine for modules, policies and
contracts.

The paper's central claim is that failures are catchable *statically*:
compliance and security are decided before anything runs (Theorems 1
and 2).  This package extends the same courtesy to specification
mistakes: vacuous policies, doomed requests and dead choice branches
are diagnosed on the parsed module, with ``file:line:col`` spans, rule
codes (``SUS0xx``), severities and fix-it hints — before any product
automaton is built.

Public surface::

    from repro.lint import lint_module, default_registry, Severity

    diagnostics = lint_module(parse_module(source))
    for diagnostic in diagnostics:
        print(diagnostic.format("network.sus"))

Rule groups (see each ``rules_*`` module):

========  =======================  ========  ==============================
code      name                     severity  catches
========  =======================  ========  ==============================
SUS001    unused-policy            warning   policy declared, never attached
SUS002    duplicate-declaration    error     name shadowing an earlier decl
SUS003    unservable-service       info      service no request can select
SUS010    unreachable-state        warning   dead non-offending states
SUS011    vacuous-policy           warning   offending states unreachable
SUS012    overlapping-edges        info      unconditional nondeterminism
SUS020    dead-external-branch     warning   inputs nobody can emit
SUS030    doomed-request           error     no compliant service exists
SUS031    unclosed-residual        error     unbalanced session/framing
SUS040    statically-invalid-plan  error     all compliant plans insecure
SUS041    non-compliant-request-pair warning  stuck pair of a doomed request
SUS042    unsatisfiable-request    error     unsat core: plan can't exist
========  =======================  ========  ==============================
"""

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import lint_module, worst_severity
from repro.lint.registry import (DEFAULT_REGISTRY, Rule, RuleRegistry,
                                 default_registry)
from repro.lint.sarif import render_json, to_sarif

__all__ = [
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "LintContext",
    "Rule",
    "RuleRegistry",
    "Severity",
    "default_registry",
    "lint_module",
    "render_json",
    "to_sarif",
    "worst_severity",
]

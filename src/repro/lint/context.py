"""The shared analysis context handed to every lint rule.

A :class:`LintContext` wraps one parsed :class:`~repro.lang.module.Module`
and memoises the module-wide facts several rules need: the normalised
declaration list (synthesised for programmatically-built modules that
carry no spans), the flat list of request occurrences, the set of
channels *some* participant can emit, and pairwise compliance verdicts.

Rules stay cheap and side-effect free: everything expensive lives here,
computed once per :func:`~repro.lint.engine.lint_module` run.
"""

from __future__ import annotations

from functools import cached_property

from repro.core.compliance import check_compliance
from repro.core.errors import ReproError
from repro.core.projection import project
from repro.core.syntax import (ExternalChoice, HistoryExpression,
                               InternalChoice)
from repro.analysis.requests import RequestInfo, extract_requests
from repro.lang.lexer import Span, Token
from repro.lang.module import Declaration, Module


class LintContext:
    """Everything rules may ask about the module under analysis."""

    def __init__(self, module: Module, *,
                 engine: str = "onthefly") -> None:
        self.module = module
        self.engine = engine
        self._compliance: dict[tuple[HistoryExpression, HistoryExpression],
                               bool | None] = {}

    # -- declarations -------------------------------------------------------

    @cached_property
    def declarations(self) -> tuple[Declaration, ...]:
        """All declarations in source order.

        Modules built without the parser (TOML networks, tests) have no
        declaration records; a span-less declaration is synthesised per
        dict entry so every rule sees one uniform shape.
        """
        if self.module.declarations:
            return tuple(self.module.declarations)
        synthesised = [
            Declaration("policy", name, None, value)
            for name, value in self.module.policies.items()]
        synthesised += [
            Declaration("client", name, None, value)
            for name, value in self.module.clients.items()]
        synthesised += [
            Declaration("service", name, None, value)
            for name, value in self.module.services.items()]
        return tuple(synthesised)

    @cached_property
    def policy_declarations(self) -> tuple[Declaration, ...]:
        return tuple(d for d in self.declarations if d.is_policy)

    @cached_property
    def term_declarations(self) -> tuple[Declaration, ...]:
        """Client and service declarations (λ-programs included), but
        only those whose value the module dicts actually kept — a
        shadowed duplicate is reported by the duplicate rule, not
        re-analysed by every other rule."""
        kept: list[Declaration] = []
        seen: set[str] = set()
        for decl in reversed(self.declarations):
            if decl.is_policy or decl.name in seen:
                continue
            seen.add(decl.name)
            kept.append(decl)
        return tuple(reversed(kept))

    def terms(self) -> tuple[tuple[Declaration, HistoryExpression], ...]:
        """The (declaration, term) pairs of all clients and services."""
        return tuple((decl, decl.value) for decl in self.term_declarations
                     if isinstance(decl.value, HistoryExpression))

    # -- requests -----------------------------------------------------------

    @cached_property
    def request_occurrences(self) -> tuple[
            tuple[Declaration, RequestInfo], ...]:
        """Every request occurrence in every declared term (nested
        requests included), in source order."""
        found: list[tuple[Declaration, RequestInfo]] = []
        for decl, term in self.terms():
            for info in extract_requests(term):
                found.append((decl, info))
        return tuple(found)

    # -- communication ------------------------------------------------------

    @cached_property
    def service_outputs(self) -> frozenset[str]:
        """Channels some *repository service* can emit towards its own
        session partner.

        Computed on each service's projection ``H!``: projecting erases
        the service's nested request bodies, whose outputs flow to *its*
        sub-services and can never reach the client side of the service's
        own session.  Collection over the projected term is syntactic,
        deliberately over-approximating reachability, so the dead-branch
        rule only fires on inputs *no* service could possibly emit.
        """
        channels: set[str] = set()
        for decl, term in self.terms():
            if not decl.is_service:
                continue
            try:
                skeleton = project(term)
            except (ReproError, TypeError):
                skeleton = term
            channels |= _send_channels(skeleton)
        return frozenset(channels)

    def session_inputs(self, body: HistoryExpression) -> tuple[str, ...]:
        """The external-choice input channels of the session body's own
        conversation (its projection — nested sessions are checked as
        their own request occurrences), first occurrence order."""
        try:
            skeleton = project(body)
        except (ReproError, TypeError):
            skeleton = body
        ordered: list[str] = []
        for node in skeleton.walk():
            if isinstance(node, ExternalChoice):
                for label, _ in node.branches:
                    if label.channel not in ordered:
                        ordered.append(label.channel)
        return tuple(ordered)

    # -- compliance ---------------------------------------------------------

    def compliant(self, body: HistoryExpression,
                  service: HistoryExpression) -> bool | None:
        """Memoised ``body ⊢ service`` verdict; ``None`` when the check
        itself failed (state-space blowup, malformed term) — callers
        must treat ``None`` as "unknown", never as a finding."""
        key = (body, service)
        if key not in self._compliance:
            try:
                verdict = check_compliance(body, service,
                                           engine=self.engine).compliant
            except (ReproError, ValueError):
                verdict = None
            self._compliance[key] = verdict
        return self._compliance[key]

    def servable(self, body: HistoryExpression) -> bool:
        """Can *some* declared service serve a session with *body*?

        Unknown verdicts count as servable, keeping the doomed-request
        rule free of false positives.
        """
        for decl, service in self.terms():
            if not decl.is_service:
                continue
            if self.compliant(body, service) is not False:
                return True
        return False

    # -- source positions ---------------------------------------------------

    @staticmethod
    def channel_span(decl: Declaration, sigil: str,
                     channel: str) -> Span | None:
        """The span of the first ``?channel``/``!channel`` occurrence in
        the declaration's body tokens (``None`` when unavailable)."""
        return _adjacent_span(decl.tokens, sigil, channel)

    @staticmethod
    def request_span(decl: Declaration, request: str) -> Span | None:
        """The span of the ``open request`` identifier in the
        declaration's body tokens."""
        return _adjacent_span(decl.tokens, "OPEN", request)

    @staticmethod
    def span_of(decl: Declaration) -> Span | None:
        """The declaration's own (name) span."""
        return decl.span


def _adjacent_span(tokens: tuple[Token, ...], lead_kind: str,
                   text: str) -> Span | None:
    for first, second in zip(tokens, tokens[1:]):
        if first.kind == lead_kind and second.text == text:
            return second.span
    return None


def _send_channels(term: HistoryExpression) -> set[str]:
    """All channels *term* syntactically outputs on."""
    channels: set[str] = set()
    for node in term.walk():
        if isinstance(node, InternalChoice):
            channels.update(label.channel for label, _ in node.branches)
    return channels

"""JSON persistence for the contract registry.

The on-disk format (``repro-registry-store.v1``) stores each entry's
name, its projected contract in the surface syntax of
:mod:`repro.lang.parser`, and its canonical fingerprint.  Contracts are
re-canonicalised on load and the stored fingerprint is checked against
the recomputed one — a mismatch means the store was edited by hand or
produced by an incompatible fingerprint scheme, and loading fails
loudly rather than serving stale discovery answers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import ReproError
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.registry.core import ContractRegistry

STORE_SCHEMA = "repro-registry-store.v1"


def registry_to_json(registry: ContractRegistry) -> dict:
    """The persistable JSON document for *registry* (sorted by name)."""
    return {
        "schema": STORE_SCHEMA,
        "entries": [
            {"name": entry.name,
             "contract": pretty(entry.term),
             "fingerprint": entry.fingerprint}
            for entry in registry.entries()],
    }


def registry_from_json(document: dict) -> ContractRegistry:
    """Rebuild a registry from a :func:`registry_to_json` document."""
    schema = document.get("schema")
    if schema != STORE_SCHEMA:
        raise ReproError(f"unsupported registry store schema {schema!r} "
                         f"(expected {STORE_SCHEMA!r})")
    registry = ContractRegistry()
    for record in document.get("entries", ()):
        name = record["name"]
        entry = registry.add(name, parse(record["contract"]))
        stored = record.get("fingerprint")
        if stored is not None and stored != entry.fingerprint:
            raise ReproError(
                f"registry entry {name!r} fingerprint mismatch: stored "
                f"{stored[:16]}…, recomputed {entry.fingerprint[:16]}…")
    return registry


def save_registry(registry: ContractRegistry, path: str | Path) -> None:
    """Write *registry* to *path* as deterministic, sorted JSON."""
    Path(path).write_text(
        json.dumps(registry_to_json(registry), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")


def load_registry(path: str | Path) -> ContractRegistry:
    """Load a registry persisted by :func:`save_registry`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ReproError(f"registry store not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"registry store is not valid JSON: {exc}") from exc
    return registry_from_json(document)

"""The signature-indexed contract registry.

A :class:`ContractRegistry` holds named service contracts — 10^4–10^5 of
them — and answers the two discovery queries of Section 5's static
planning story without an all-pairs product sweep:

* :meth:`find_compliant` — which registered servers can this client
  talk to? (``client ⊢ server``, Definition 4/5);
* :meth:`find_substitutable` — which registered servers refine this
  advertised contract? (``advertised ≼ server``, the subcontract
  preorder), so any client verified against the advertisement can be
  routed to them.

Three canonicalization layers do the pruning:

1. **Signature buckets.**  Entries are bucketed by their ready-set
   :class:`~repro.canon.fingerprint.Signature`.  The Definition-5 stuck
   check at the *initial* product pair — and the preorder's initial
   refusal check — read exactly the fields a signature records, so one
   set comparison per bucket soundly discards every member at once.
   A pruned bucket is never even enumerated.
2. **Fingerprint dedup.**  Surviving candidates are grouped by
   canonical fingerprint: bisimilar contracts get identical verdicts
   (quotienting preserves compliance — see :mod:`repro.canon.minimize`),
   so one product check serves the whole group.
3. **Verdict memo.**  Verdicts are memoised by fingerprint *pair* —
   fingerprints determine contracts up to bisimilarity, so a memoised
   verdict stays valid across entry updates and even across
   ``clear_contract_caches()`` flushes; updating an entry only moves it
   between buckets, it never invalidates unrelated verdicts.  That is
   what makes recertification after an update incremental: only pairs
   involving a genuinely *new* canonical contract are recomputed.

The exhaustive baselines (:meth:`exhaustive_compliant`,
:meth:`exhaustive_substitutable`) run the same per-entry deciders with
every layer disabled — the benchmark's ground truth, byte-identical
verdicts required.

Telemetry: ``registry.adds``/``registry.queries`` counters, per-query
``registry.query`` spans and events carrying candidate/pruning counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.canon.fingerprint import CanonicalForm, Signature, canonicalize
from repro.canon.minimize import QuotientContract, minimize
from repro.canon.preorder import _left_analysis, subcontract_preorder
from repro.compiled.search import compiled_search
from repro.contracts.contract import Contract
from repro.core.errors import ReproError
from repro.core.syntax import HistoryExpression
from repro.observability import runtime as _telemetry

#: Product-search budget per candidate check.
MAX_PRODUCT_STATES = 1_000_000


@dataclass(frozen=True)
class RegistryEntry:
    """One registered service: its name, projected contract term and
    canonical form."""

    name: str
    term: HistoryExpression
    canonical: CanonicalForm

    @property
    def fingerprint(self) -> str:
        return self.canonical.fingerprint

    @property
    def signature(self) -> Signature:
        return self.canonical.signature


@dataclass(frozen=True)
class RegistryQuery:
    """Outcome of one discovery query.

    ``matches`` is the sorted tuple of matching entry names.  The stats
    describe the pruning funnel: of ``total`` entries, ``pruned`` were
    discarded by bucket signature tests alone, ``candidates`` survived
    to candidate status, and only ``product_checks`` product/preorder
    decisions actually ran (``dedup_hits`` candidates rode along on a
    fingerprint group or a memoised verdict).
    """

    kind: str
    matches: tuple[str, ...]
    total: int
    buckets: int
    pruned_buckets: int
    pruned: int
    candidates: int
    product_checks: int
    dedup_hits: int

    def to_json(self) -> dict:
        return {"kind": self.kind, "matches": list(self.matches),
                "total": self.total, "buckets": self.buckets,
                "pruned_buckets": self.pruned_buckets,
                "pruned": self.pruned, "candidates": self.candidates,
                "product_checks": self.product_checks,
                "dedup_hits": self.dedup_hits,
                "pruning_ratio": self.pruning_ratio}

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the all-pairs product checks the index avoided."""
        if not self.total:
            return 0.0
        return 1.0 - (self.product_checks / self.total)


class ContractRegistry:
    """A persistent, signature-indexed store of named contracts."""

    def __init__(self) -> None:
        self._entries: dict[str, RegistryEntry] = {}
        self._buckets: dict[Signature, set[str]] = {}
        # Verdict memo keyed by canonical fingerprints — safe across
        # updates and cache flushes (see the module docstring).
        self._verdicts: dict[tuple[str, str, str], bool] = {}

    # -- population ---------------------------------------------------------

    def add(self, name: str, term: HistoryExpression | Contract
            ) -> RegistryEntry:
        """Register *term* under *name* (replacing any previous entry —
        the incremental-update path)."""
        contract = term if isinstance(term, Contract) else Contract(term)
        canonical = canonicalize(contract)
        entry = RegistryEntry(name=name, term=contract.term,
                              canonical=canonical)
        if name in self._entries:
            self._unbucket(self._entries[name])
        self._entries[name] = entry
        self._buckets.setdefault(canonical.signature, set()).add(name)
        tel = _telemetry.active()
        if tel is not None:
            tel.metrics.counter("registry.adds").inc()
        return entry

    def remove(self, name: str) -> None:
        """Drop the entry named *name* (:class:`ReproError` if absent)."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise ReproError(f"no registered contract named {name!r}")
        self._unbucket(entry)

    def update(self, name: str, term: HistoryExpression | Contract
               ) -> RegistryEntry:
        """Re-register *name* with a new contract.  Memoised verdicts
        for other entries are untouched; only pairs involving the new
        canonical form are (lazily) recomputed."""
        return self.add(name, term)

    def clear_verdict_memo(self) -> None:
        """Drop every memoised pairwise verdict.  Never *required* for
        correctness (the memo is keyed by canonical fingerprints); used
        by benchmarks to re-time queries cold."""
        self._verdicts.clear()

    def _unbucket(self, entry: RegistryEntry) -> None:
        names = self._buckets.get(entry.signature)
        if names is not None:
            names.discard(entry.name)
            if not names:
                del self._buckets[entry.signature]

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entry(self, name: str) -> RegistryEntry:
        found = self._entries.get(name)
        if found is None:
            raise ReproError(f"no registered contract named {name!r}")
        return found

    def entries(self) -> tuple[RegistryEntry, ...]:
        return tuple(self._entries[name] for name in self.names())

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def duplicate_groups(self) -> tuple[tuple[str, ...], ...]:
        """Groups of entries with identical canonical forms (bisimilar
        contracts published under different names), each sorted, groups
        ordered by first member."""
        by_key: dict[tuple, list[str]] = {}
        for name in self.names():
            by_key.setdefault(self._entries[name].canonical.key,
                              []).append(name)
        return tuple(tuple(group) for group in
                     sorted(by_key.values())
                     if len(group) >= 2)

    # -- queries ------------------------------------------------------------

    def find_compliant(self, client: HistoryExpression | Contract
                       ) -> RegistryQuery:
        """Every registered server the *client* is compliant with."""
        return self._query("compliant", client)

    def find_substitutable(self, advertised: HistoryExpression | Contract
                           ) -> RegistryQuery:
        """Every registered server refining the *advertised* contract
        (``advertised ≼ server``)."""
        return self._query("substitutable", advertised)

    def _query(self, kind: str, term: HistoryExpression | Contract
               ) -> RegistryQuery:
        tel = _telemetry.active()
        if tel is None:
            return self._run_query(kind, term)
        with tel.tracer.span("registry.query", kind=kind) as span:
            started = time.perf_counter()
            result = self._run_query(kind, term)
            metrics = tel.metrics
            metrics.counter("registry.queries", kind=kind).inc()
            metrics.counter("registry.candidates").inc(result.candidates)
            metrics.counter("registry.pruned").inc(result.pruned)
            metrics.counter("registry.product_checks").inc(
                result.product_checks)
            metrics.counter("registry.dedup_hits").inc(result.dedup_hits)
            metrics.histogram("registry.query.seconds").observe(
                time.perf_counter() - started)
            span.set(matches=len(result.matches),
                     candidates=result.candidates,
                     product_checks=result.product_checks)
            tel.emit("registry.query", kind=kind,
                     matches=len(result.matches), total=result.total,
                     pruned=result.pruned,
                     product_checks=result.product_checks)
        return result

    def _run_query(self, kind: str, term: HistoryExpression | Contract
                   ) -> RegistryQuery:
        contract = term if isinstance(term, Contract) else Contract(term)
        query_q = minimize(contract)
        query_fp = canonicalize(contract).fingerprint
        if kind == "compliant":
            keep_bucket = _compliant_bucket_filter(query_q)
        else:
            keep_bucket = _substitutable_bucket_filter(query_q)

        total = len(self._entries)
        pruned_buckets = 0
        pruned = 0
        candidates: list[str] = []
        for signature, names in self._buckets.items():
            if not keep_bucket(signature):
                pruned_buckets += 1
                pruned += len(names)
                continue
            candidates.extend(names)

        matches: list[str] = []
        product_checks = 0
        dedup_hits = 0
        by_fingerprint: dict[str, bool] = {}
        for name in sorted(candidates):
            entry = self._entries[name]
            fp = entry.fingerprint
            verdict = by_fingerprint.get(fp)
            if verdict is None:
                memo_key = (kind, query_fp, fp)
                verdict = self._verdicts.get(memo_key)
                if verdict is None:
                    verdict = self._check(kind, query_q, entry)
                    self._verdicts[memo_key] = verdict
                    product_checks += 1
                else:
                    dedup_hits += 1
                by_fingerprint[fp] = verdict
            else:
                dedup_hits += 1
            if verdict:
                matches.append(name)
        return RegistryQuery(
            kind=kind, matches=tuple(matches), total=total,
            buckets=len(self._buckets), pruned_buckets=pruned_buckets,
            pruned=pruned, candidates=len(candidates),
            product_checks=product_checks, dedup_hits=dedup_hits)

    def _check(self, kind: str, query_q: QuotientContract,
               entry: RegistryEntry) -> bool:
        server_q = minimize(entry.term)
        if kind == "compliant":
            return compiled_search(query_q, server_q,
                                   MAX_PRODUCT_STATES).empty
        return subcontract_preorder(query_q.term, server_q.term).holds

    # -- exhaustive baselines (benchmark ground truth) ----------------------

    def exhaustive_compliant(self, client: HistoryExpression | Contract
                             ) -> tuple[str, ...]:
        """All-pairs ``client ⊢ server`` sweep: one product check per
        entry, no buckets, no dedup, no memo."""
        contract = client if isinstance(client, Contract) else \
            Contract(client)
        client_q = minimize(contract)
        return tuple(
            name for name in self.names()
            if compiled_search(client_q, minimize(self._entries[name].term),
                               MAX_PRODUCT_STATES).empty)

    def exhaustive_substitutable(self,
                                 advertised: HistoryExpression | Contract
                                 ) -> tuple[str, ...]:
        """All-pairs ``advertised ≼ server`` sweep."""
        contract = advertised if isinstance(advertised, Contract) else \
            Contract(advertised)
        return tuple(
            name for name in self.names()
            if subcontract_preorder(contract.term,
                                    self._entries[name].term).holds)

    # -- summary ------------------------------------------------------------

    def stats(self) -> dict:
        """Registry shape: entries, buckets, canonical classes, the
        dedup ratio the fingerprint layer buys."""
        fingerprints = {entry.fingerprint
                        for entry in self._entries.values()}
        total = len(self._entries)
        return {"entries": total,
                "buckets": len(self._buckets),
                "canonical_classes": len(fingerprints),
                "duplicate_groups": len(self.duplicate_groups()),
                "dedup_ratio": (1.0 - len(fingerprints) / total
                                if total else 0.0),
                "memoized_verdicts": len(self._verdicts)}


def _compliant_bucket_filter(client_q: QuotientContract):
    """The Definition-5 initial stuck test, lifted to a whole bucket.

    A bucket signature records exactly the initial output/input channel
    sets shared by every member, so the initial-pair stuck check — no
    outputs at all, or an output unmatched by the partner's inputs —
    evaluates once per bucket.  A stuck initial pair means every member
    is non-compliant with the client (the empty trace already reaches a
    stuck state); a live one means the members need a real search.
    """
    if client_q.terminated[0]:
        # A client that may terminate immediately is never stuck at the
        # initial pair; no bucket can be pruned on initial evidence.
        return lambda signature: True
    from repro.canon.fingerprint import _channels_of
    out1 = set(_channels_of(client_q.out_mask[0]))
    in1 = set(_channels_of(client_q.in_mask[0]))

    def keep(signature: Signature) -> bool:
        out2 = set(signature.initial_outputs)
        if not (out1 or out2):
            return False
        if out1 - set(signature.initial_inputs):
            return False
        if out2 - in1:
            return False
        return True
    return keep


def _substitutable_bucket_filter(advertised_q: QuotientContract):
    """The preorder's initial refusal condition, lifted to a bucket.

    Mirrors :func:`repro.canon.preorder._refusal` at the root meet pair
    ``({initial}, {initial})`` using only signature fields; a refusing
    initial pair disqualifies every bucket member at once.
    """
    mode, bits = _left_analysis(advertised_q, (0,))
    if mode == "vacuous":
        # Only ε complies with the advertised contract: everything
        # refines it.
        return lambda signature: True
    from repro.canon.fingerprint import _channels_of
    allowed = set(_channels_of(bits))

    if mode == "output":
        def keep(signature: Signature) -> bool:
            out2 = set(signature.initial_outputs)
            return bool(out2) and not (out2 - allowed)
        return keep

    def keep(signature: Signature) -> bool:
        if signature.initial_outputs:
            return False
        in2 = set(signature.initial_inputs)
        return bool(in2) and not (allowed - in2)
    return keep

"""The signature-indexed contract registry.

:class:`ContractRegistry` stores named service contracts bucketed by
their canonical ready-set :class:`~repro.canon.fingerprint.Signature`
and answers the two discovery queries — :meth:`find_compliant` and
:meth:`find_substitutable` — through three pruning layers (signature
buckets, fingerprint dedup, fingerprint-pair verdict memos) instead of
an all-pairs product sweep.  See :mod:`repro.registry.core` for the
design and :mod:`repro.registry.store` for the persistence format.
"""

from __future__ import annotations

from repro.registry.core import (MAX_PRODUCT_STATES, ContractRegistry,
                                 RegistryEntry, RegistryQuery)
from repro.registry.store import (STORE_SCHEMA, load_registry,
                                  registry_from_json, registry_to_json,
                                  save_registry)

__all__ = [
    "MAX_PRODUCT_STATES", "ContractRegistry", "RegistryEntry",
    "RegistryQuery", "STORE_SCHEMA", "load_registry",
    "registry_from_json", "registry_to_json", "save_registry",
]

"""Checkpoints and the rollback policy for supervised runs.

The network-level mirror of :mod:`repro.core.reversible`: whenever a
component fires a transition at a state offering two or more distinct
moves, the supervisor pushes a :class:`Checkpoint` — an immutable
snapshot of the component (history *and* session tree), its open-session
target stack, and the set of move keys already tried from that state.
Component snapshots are persistent dataclasses, so a checkpoint is O(1)
to take and restoring one is a single ``Configuration.replace``.

Rolling back pops to the nearest checkpoint with an untried alternative,
restores the snapshot and *bans* the tried keys until the component
fires again, steering the scheduler onto a different branch.  Because
the restored history is exactly the recorded prefix at push time,
histories remain valid prefixes of balanced histories across rewinds —
the invariant the property suite replays through all four compliance
engines.

:class:`RollbackPolicy` is the knob surface (``chaos --no-rollback`` /
``--max-rollbacks`` on the CLI): rollback attempts per recovery episode
are bounded, and each waits one exponential-backoff delay on the
simulated clock — during which due faults still land, which is how chaos
scenarios inject faults *mid-rollback*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import Component
from repro.network.semantics import NetworkTransition

#: A component-local identity for one enabled move: enough to tell
#: branches of a choice apart, stable across snapshot/restore.
MoveKey = tuple[str, str, str, str]


def move_key(transition: NetworkTransition) -> MoveKey:
    """The branch identity of *transition* within its component."""
    return (transition.rule, str(transition.label),
            transition.location, transition.channel)


@dataclass(frozen=True)
class RollbackPolicy:
    """How eagerly a supervisor rewinds before escalating.

    ``enabled`` switches rollback-first recovery on (the default);
    ``max_rollbacks`` bounds the rewind attempts of one recovery episode
    — when the budget or the checkpoint stack is exhausted, the
    supervisor falls back to retry/compensate/replan.
    """

    enabled: bool = True
    max_rollbacks: int = 8

    @staticmethod
    def of(value: "RollbackPolicy | bool") -> "RollbackPolicy":
        """Normalise the ``rollback=`` knob: ``True``/``False`` select
        the default-enabled/disabled policy."""
        if isinstance(value, RollbackPolicy):
            return value
        return RollbackPolicy(enabled=bool(value))


@dataclass(frozen=True)
class Checkpoint:
    """One checkpointed choice of one component.

    ``snapshot`` is the component exactly as it was when the choice
    fired (immutable — restoring is one ``Configuration.replace``);
    ``targets`` the open-session target stack at that moment;
    ``alternatives`` every distinct move key that was enabled;
    ``tried`` the keys already taken from this state (grows across
    rollbacks — a branch is never retried from the same checkpoint).
    ``tick``/``step`` locate the push for the flight recorder.
    """

    component: int
    snapshot: Component
    targets: tuple[str, ...]
    alternatives: frozenset[MoveKey]
    tried: frozenset[MoveKey]
    tick: int
    step: int

    @property
    def untried(self) -> frozenset[MoveKey]:
        return self.alternatives - self.tried

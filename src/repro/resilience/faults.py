"""Declarative, seeded fault plans for the network runtime.

A :class:`Fault` is one injectable misbehaviour of the deployed network,
triggered on the supervisor's simulated clock:

* ``crash`` — the service at a location dies: every transition involving
  the location (synchronisations, session opens routed to it, its own
  accesses) is suppressed from ``at_step`` on, forever;
* ``drop`` — the service at a location withholds one output its contract
  promises: synchronisations on the channel involving the location are
  suppressed while the fault is active (optionally bounded by
  ``duration`` ticks — a transient network partition);
* ``stall`` — a session open for a request hangs: ``open`` transitions
  for the request are suppressed while the fault is active;
* ``byzantine`` — the service at a location deviates from its published
  contract: its live term is mutated (one promised output is renamed to
  a channel nobody expects), and the deviant moves then flow through the
  ordinary :func:`repro.network.semantics.network_transitions` machinery
  — the monitored validity filter and the compliance machinery see them
  exactly as they would see a genuinely misbehaving service.

A :class:`FaultPlan` is an immutable collection of faults, either built
explicitly or sampled deterministically from a seed
(:func:`sample_fault_plan`), which is what the chaos harness does.

Fault *application* is split between this module (which faults block
which transitions, which term rewrites are due) and the
:class:`~repro.resilience.supervisor.Supervisor` (which owns the clock
and the simulator being disturbed).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.core.actions import Send
from repro.core.syntax import (ExternalChoice, Framing,
                               HistoryExpression, InternalChoice, Mu,
                               Request, Seq, receive, seq)
from repro.network.config import SessionTree, leaves
from repro.network.repository import Repository
from repro.network.semantics import NetworkTransition

#: The fault kinds a plan may contain.
FAULT_KINDS = ("crash", "drop", "stall", "byzantine")

#: A channel no contract ever listens on — the target of byzantine
#: output renaming (and the input a crashed service would wait on).
DEVIANT_SUFFIX = "#deviant"


@dataclass(frozen=True)
class Fault:
    """One injectable fault.

    ``at_step`` is the simulated-clock tick the fault arms at;
    ``duration`` bounds transient faults (``None`` — and always, for
    ``crash``/``byzantine`` — means permanent).
    """

    kind: str
    location: str = ""
    channel: str = ""
    request: str = ""
    at_step: int = 0
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {', '.join(FAULT_KINDS)})")

    def active(self, now: int) -> bool:
        """Is the fault in force at tick *now*?"""
        if now < self.at_step:
            return False
        if self.kind in ("crash", "byzantine") or self.duration is None:
            return True
        return now < self.at_step + self.duration

    def describe(self) -> str:
        """A stable one-line description (used by chaos reports)."""
        window = ("" if self.duration is None
                  or self.kind in ("crash", "byzantine")
                  else f" for {self.duration} tick(s)")
        if self.kind == "crash":
            return f"crash of {self.location} at tick {self.at_step}"
        if self.kind == "drop":
            return (f"drop of !{self.channel} at {self.location} "
                    f"from tick {self.at_step}{window}")
        if self.kind == "stall":
            return (f"stall of open {self.request} "
                    f"from tick {self.at_step}{window}")
        return f"byzantine deviation of {self.location} at tick {self.at_step}"


def involved_locations(before: SessionTree,
                       after: SessionTree) -> frozenset[str]:
    """The locations a transition touched, computed by diffing the
    component's session tree before and after the move.

    A synchronisation changes both participants' terms; an open changes
    the opener and adds the joined service; a close changes the opener
    and discards the partner — in every case the touched leaves differ
    between the two trees, so the symmetric multiset difference of
    ``(location, term)`` leaves names exactly the participants.
    """
    before_leaves = Counter((leaf.location, leaf.term)
                            for leaf in leaves(before))
    after_leaves = Counter((leaf.location, leaf.term)
                           for leaf in leaves(after))
    changed = (before_leaves - after_leaves) + (after_leaves - before_leaves)
    return frozenset(location for location, _term in changed)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of faults (possibly empty).

    ``seed`` records the sampling seed when the plan was drawn by
    :func:`sample_fault_plan` — provenance for chaos reports.
    """

    faults: tuple[Fault, ...] = ()
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def blocking_fault(self, transition: NetworkTransition,
                       before: SessionTree, now: int) -> Fault | None:
        """The first active fault suppressing *transition*, or ``None``.

        *before* is the moved component's session tree prior to the
        transition (needed to compute the involved locations).
        """
        involved: frozenset[str] | None = None
        for fault in self.faults:
            if not fault.active(now):
                continue
            if fault.kind == "crash":
                if involved is None:
                    involved = involved_locations(
                        before, transition.successor[transition.component]
                        .tree)
                if fault.location in involved:
                    return fault
            elif fault.kind == "drop":
                if (transition.rule == "synch"
                        and transition.channel == fault.channel):
                    if involved is None:
                        involved = involved_locations(
                            before,
                            transition.successor[transition.component]
                            .tree)
                    if fault.location in involved:
                        return fault
            elif fault.kind == "stall":
                if (transition.rule == "open"
                        and getattr(transition.label, "request", None)
                        == fault.request):
                    return fault
        return None

    def due_mutations(self, now: int,
                      applied: frozenset[Fault]) -> tuple[Fault, ...]:
        """Byzantine faults armed by *now* and not applied yet."""
        return tuple(fault for fault in self.faults
                     if fault.kind == "byzantine"
                     and fault.active(now) and fault not in applied)

    def crashed_locations(self, now: int) -> tuple[str, ...]:
        """Locations with an active crash fault, in plan order."""
        return tuple(fault.location for fault in self.faults
                     if fault.kind == "crash" and fault.active(now))

    def describe(self) -> tuple[str, ...]:
        return tuple(fault.describe() for fault in self.faults)


# -- byzantine term mutation -------------------------------------------------

def mutate_term(term: HistoryExpression,
                rng: random.Random) -> HistoryExpression:
    """A contract-deviating variant of *term*: one reachable promised
    output is renamed to a channel no partner listens on.

    When the term has no output left to corrupt, the service instead
    hangs on an input nobody sends — the degenerate deviation.
    The choice of output is drawn from *rng*, so mutations are seeded.
    """
    sends = _count_sends(term)
    if sends == 0:
        return receive("never" + DEVIANT_SUFFIX)
    target = rng.randrange(sends)
    mutated, _seen = _rename_send(term, target, 0)
    return mutated


def _count_sends(term: HistoryExpression) -> int:
    count = 0
    for node in term.walk():
        if isinstance(node, InternalChoice):
            count += len(node.branches)
    return count


def _rename_send(term: HistoryExpression, target: int,
                 seen: int) -> tuple[HistoryExpression, int]:
    """Rewrite send number *target* (in pre-order) to the deviant
    channel; returns the rewritten term and the updated send count."""
    if isinstance(term, InternalChoice):
        branches = []
        changed = False
        for label, cont in term.branches:
            if seen == target:
                label = Send(label.channel + DEVIANT_SUFFIX)
                changed = True
            seen += 1
            cont2, seen = _rename_send(cont, target, seen)
            changed = changed or cont2 is not cont
            branches.append((label, cont2))
        return ((InternalChoice(tuple(branches)) if changed else term),
                seen)
    if isinstance(term, ExternalChoice):
        branches = []
        changed = False
        for label, cont in term.branches:
            cont2, seen = _rename_send(cont, target, seen)
            changed = changed or cont2 is not cont
            branches.append((label, cont2))
        return ((ExternalChoice(tuple(branches)) if changed else term),
                seen)
    if isinstance(term, Seq):
        first, seen = _rename_send(term.first, target, seen)
        second, seen = _rename_send(term.second, target, seen)
        if first is term.first and second is term.second:
            return term, seen
        return seq(first, second), seen
    if isinstance(term, Mu):
        body, seen = _rename_send(term.body, target, seen)
        return (term if body is term.body else Mu(term.var, body)), seen
    if isinstance(term, Request):
        body, seen = _rename_send(term.body, target, seen)
        return (term if body is term.body
                else Request(term.request, term.policy, body)), seen
    if isinstance(term, Framing):
        body, seen = _rename_send(term.body, target, seen)
        return (term if body is term.body
                else Framing(term.policy, body)), seen
    return term, seen


# -- seeded sampling ---------------------------------------------------------

def service_channels(repository: Repository,
                     location: str) -> tuple[str, ...]:
    """The output channels the service at *location* promises, in term
    order (the candidates for a ``drop`` fault)."""
    term = repository.get(location)
    if term is None:
        return ()
    channels: list[str] = []
    for node in term.walk():
        if isinstance(node, InternalChoice):
            for label, _cont in node.branches:
                if label.channel not in channels:
                    channels.append(label.channel)
    return tuple(channels)


def module_requests(clients, repository: Repository) -> tuple[str, ...]:
    """Every request identifier occurring in the clients or the
    published services, sorted (the candidates for a ``stall`` fault)."""
    found: set[str] = set()
    terms = list(clients.values() if hasattr(clients, "values")
                 else clients)
    terms.extend(term for _loc, term in repository.items())
    for term in terms:
        for node in term.walk():
            if isinstance(node, Request):
                found.add(node.request)
    return tuple(sorted(found))


def sample_fault_plan(seed: int | random.Random,
                      repository: Repository,
                      requests: tuple[str, ...] = (),
                      kinds: tuple[str, ...] = ("crash", "drop", "stall"),
                      max_faults: int = 3,
                      horizon: int = 24,
                      max_duration: int = 8) -> FaultPlan:
    """Draw a random fault plan, deterministically from *seed*.

    *kinds* restricts the fault vocabulary; *horizon* bounds trigger
    ticks; transient faults get durations in ``[1, max_duration]``.
    Sampling only reads ordered views (location/channel tuples), so the
    same seed yields the same plan across processes.
    """
    rng = (seed if isinstance(seed, random.Random)
           else random.Random(seed))
    plan_seed = seed if isinstance(seed, int) else None
    locations = repository.locations()
    faults: list[Fault] = []
    for _ in range(rng.randint(0, max_faults)):
        choices = [kind for kind in kinds if kind in FAULT_KINDS
                   and (kind != "stall" or requests)
                   and (kind == "stall" or locations)]
        if not choices:
            break
        kind = rng.choice(choices)
        at_step = rng.randrange(horizon)
        if kind == "stall":
            faults.append(Fault("stall", request=rng.choice(requests),
                                at_step=at_step,
                                duration=rng.randint(1, max_duration)))
            continue
        location = rng.choice(locations)
        if kind == "crash":
            faults.append(Fault("crash", location=location,
                                at_step=at_step))
        elif kind == "byzantine":
            faults.append(Fault("byzantine", location=location,
                                at_step=at_step))
        else:
            channels = service_channels(repository, location)
            if not channels:
                continue
            faults.append(Fault("drop", location=location,
                                channel=rng.choice(channels),
                                at_step=at_step,
                                duration=rng.randint(1, max_duration)))
    return FaultPlan(tuple(faults), seed=plan_seed)

"""Fault injection, recovery and chaos testing for the network runtime.

The package layers resilience over :mod:`repro.network`:

* :mod:`repro.resilience.faults` — declarative, seeded fault plans
  (crash / drop / stall / byzantine);
* :mod:`repro.resilience.checkpoints` — checkpointed choices and the
  rollback policy (the network-level reversible-session state);
* :mod:`repro.resilience.recovery` — backoff, compensation and failover
  re-planning through the memoized planner;
* :mod:`repro.resilience.supervisor` — a fault-detecting wrapper around
  the simulator with per-location circuit breakers and budgets;
* :mod:`repro.resilience.harness` — the deterministic chaos harness and
  its invariant (valid plan + recovery ⇒ no security violation, no
  undiagnosed trial).
"""

from repro.resilience.checkpoints import (Checkpoint, RollbackPolicy,
                                          move_key)
from repro.resilience.faults import (FAULT_KINDS, Fault, FaultPlan,
                                     involved_locations, module_requests,
                                     mutate_term, sample_fault_plan,
                                     service_channels)
from repro.resilience.harness import (CHAOS_SCHEMA, ChaosReport,
                                      TrialResult, run_chaos)
from repro.resilience.recovery import (BackoffPolicy, RecoveryEpisode,
                                       compensate, replan,
                                       residual_frame_closes)
from repro.resilience.supervisor import (BREAKER_EDGES, CircuitBreaker,
                                         Supervisor, SupervisorResult)

__all__ = [
    "Checkpoint", "RollbackPolicy", "move_key",
    "FAULT_KINDS", "Fault", "FaultPlan", "involved_locations",
    "module_requests", "mutate_term", "sample_fault_plan",
    "service_channels",
    "BackoffPolicy", "RecoveryEpisode", "compensate", "replan",
    "residual_frame_closes",
    "BREAKER_EDGES", "CircuitBreaker", "Supervisor", "SupervisorResult",
    "CHAOS_SCHEMA", "ChaosReport", "TrialResult", "run_chaos",
]

"""A fault-detecting, recovering wrapper around the network simulator.

The :class:`Supervisor` drives a monitored :class:`Simulator` one
transition at a time, with three extra powers the plain simulator lacks:

* **fault injection** — before every step the active
  :class:`~repro.resilience.faults.FaultPlan` filters the enabled
  transitions (crash/drop/stall) and applies due byzantine term
  mutations, all on a simulated clock;
* **fault detection** — when no transition may fire, the supervisor
  tells *injected* starvation (the raw semantics still has moves) from
  genuine stuckness, and classifies the latter with
  :func:`~repro.network.semantics.classify_stuckness`;
* **recovery** — the ladder is rollback-first: blocked components first
  rewind to their latest checkpoint with an untried branch
  (:mod:`repro.resilience.checkpoints`), each attempt waiting one
  exponential-backoff delay on the simulated clock; only when the
  checkpoint stack (or the per-episode rollback budget) is exhausted do
  they fall back to bounded backoff retry, then compensation plus
  failover re-planning (:mod:`repro.resilience.recovery`), guarded by a
  per-location circuit breaker (closed → open after repeated failures →
  half-open probe after a cooldown).  Because due faults are applied
  after every rollback wait, chaos can inject faults *during* rollback
  — a rewound branch may find its alternative freshly blocked and
  rewind deeper.

Budgets (transition steps and simulated-clock deadline) bound every run,
and the result always says *how* it ended — completion, clean abort with
a diagnosis, security violation (never, under a valid plan), or budget
exhaustion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.plans import Plan, PlanVector
from repro.core.validity import History
from repro.network.config import (Component, Configuration, Leaf,
                                  locations)
from repro.network.repository import Repository
from repro.network.semantics import (NetworkTransition, classify_stuckness)
from repro.network.simulator import Simulator
from repro.observability import runtime as _telemetry
from repro.resilience.checkpoints import (Checkpoint, MoveKey,
                                          RollbackPolicy, move_key)
from repro.resilience.faults import Fault, FaultPlan, involved_locations, \
    mutate_term
from repro.resilience.recovery import (BackoffPolicy, RecoveryEpisode,
                                       compensate, replan)

#: Circuit-breaker states, in escalation order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

#: The legal breaker transitions — the monotonicity the property tests
#: assert: an episode runs closed → open → half-open → {closed, open}.
BREAKER_EDGES = frozenset({(CLOSED, OPEN), (OPEN, HALF_OPEN),
                           (HALF_OPEN, CLOSED), (HALF_OPEN, OPEN)})


class CircuitBreaker:
    """A per-location circuit breaker on the supervisor's clock.

    ``closed`` passes traffic and counts failures; at
    *failure_threshold* failures it trips ``open``, barring the
    location (from session opens and from re-planning candidates);
    after *cooldown* ticks the next availability check moves it to
    ``half-open``, which admits one probe — a success closes the
    breaker again, a failure re-opens it.
    """

    __slots__ = ("failure_threshold", "cooldown", "state", "failures",
                 "opened_at", "transitions")

    def __init__(self, failure_threshold: int = 2,
                 cooldown: int = 6) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.failures = 0
        self.opened_at: int | None = None
        #: (from-state, to-state, tick) triples, in order.
        self.transitions: list[tuple[str, str, int]] = []

    def _goto(self, state: str, now: int) -> None:
        previous = self.state
        self.transitions.append((previous, state, now))
        self.state = state
        tel = _telemetry.active()
        if tel is not None:
            tel.metrics.counter("resilience.breaker_transitions",
                                to=state).inc()
            tel.emit("breaker.transition", from_state=previous,
                     to_state=state, tick=now)

    def allows(self, now: int) -> bool:
        """May traffic be routed to the location at tick *now*?  (An
        open breaker past its cooldown half-opens here — the probe.)"""
        if (self.state == OPEN and self.opened_at is not None
                and now - self.opened_at >= self.cooldown):
            self._goto(HALF_OPEN, now)
        return self.state != OPEN

    def record_failure(self, now: int) -> None:
        if self.state == HALF_OPEN:
            self.opened_at = now
            self._goto(OPEN, now)
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.failure_threshold:
            self.opened_at = now
            self._goto(OPEN, now)

    def record_success(self, now: int) -> None:
        self.failures = 0
        if self.state == HALF_OPEN:
            self._goto(CLOSED, now)


@dataclass
class SupervisorResult:
    """Everything one supervised run determined.

    ``status`` is one of ``completed``, ``aborted`` (clean, with
    ``diagnosis``), ``security-violation`` (with ``abort_cause``) or
    ``budget-exhausted``.
    """

    status: str
    steps: int
    clock: int
    diagnosis: str | None
    episodes: list[RecoveryEpisode]
    faults: tuple[str, ...]
    blocked_transitions: int
    abort_cause: tuple[str | None, str | None] | None
    breakers: dict[str, list[tuple[str, str, int]]]
    histories: tuple[History, ...]

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def diagnosed(self) -> bool:
        """Did the run end either successfully or with an explanation?
        (The chaos invariant: no undiagnosed trial.)"""
        return self.completed or bool(self.diagnosis)

    @property
    def retries(self) -> int:
        """Backoff waits across every episode (never rollbacks/replans)."""
        return sum(episode.retries for episode in self.episodes)

    @property
    def rollbacks(self) -> int:
        """Checkpoint rewinds across every episode."""
        return sum(episode.rollbacks for episode in self.episodes)

    @property
    def replans(self) -> int:
        """Episodes that compensated and failed over to a new plan."""
        return sum(1 for episode in self.episodes
                   if episode.outcome == "failed-over")


class Supervisor:
    """Run a network under fault injection with recovery.

    *clients* maps client locations to their behaviours (the same shape
    the CLI and :func:`~repro.analysis.verification.verify_network`
    use); *plans* is the verified plan vector the run starts from.
    """

    def __init__(self, clients, plans: PlanVector,
                 repository: Repository,
                 fault_plan: FaultPlan = FaultPlan(),
                 recover: bool = True,
                 rollback: RollbackPolicy | bool = True,
                 backoff: BackoffPolicy = BackoffPolicy(),
                 breaker_threshold: int = 2,
                 breaker_cooldown: int = 6,
                 max_steps: int = 2_000,
                 deadline: int | None = None,
                 seed: int = 0) -> None:
        self.clients = dict(clients)
        self.client_locations = tuple(self.clients)
        self.repository = repository
        self.fault_plan = fault_plan
        self.recover = recover
        self.rollback_policy = RollbackPolicy.of(rollback)
        self.backoff = backoff
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.max_steps = max_steps
        self.deadline = deadline
        self.seed = seed
        self._plans = [plans[index] if not isinstance(plans, Plan)
                       else plans for index in range(len(self.clients))]
        configuration = Configuration.of(*(
            Component.client(location, term)
            for location, term in self.clients.items()))
        self.simulator = Simulator(configuration,
                                   PlanVector(tuple(self._plans)),
                                   repository, monitored=True, seed=seed)
        self._rng = random.Random(seed)
        self._fault_rng = random.Random(seed ^ 0x5EED)
        self.clock = 0
        self.episodes: list[RecoveryEpisode] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self.blocked_transitions = 0
        self._applied_mutations: set[Fault] = set()
        # Flight-recorder correlation state: the "fault.injected" event
        # seq per fault (each fault is recorded once, however many
        # transitions it blocks) and the seq of the most recent causal
        # event, which the final "run.verdict" links back to.
        self._fault_events: dict[Fault, int] = {}
        self._last_event_seq: int | None = None
        #: Per-component stack of open session target locations.
        self._session_targets: list[list[str]] = [
            [] for _ in self.clients]
        #: Per-component checkpoint stacks (reversible-session state).
        self._checkpoints: list[list[Checkpoint]] = [
            [] for _ in self.clients]
        #: Branch keys barred per component until its next firing — the
        #: tried set of the checkpoint a rollback restored.
        self._banned: list[frozenset[MoveKey]] = [
            frozenset() for _ in self.clients]
        #: The restored checkpoint awaiting its re-choice; re-pushed
        #: (with the taken branch added to ``tried``) when the component
        #: fires again, so no branch repeats from the same state.
        self._pending: list[Checkpoint | None] = [None] * len(self.clients)
        self.checkpoints_pushed = 0

    # -- breaker plumbing ---------------------------------------------------

    def _breaker(self, location: str) -> CircuitBreaker:
        breaker = self.breakers.get(location)
        if breaker is None:
            breaker = self.breakers[location] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown)
        return breaker

    def _breaker_allows(self, location: str) -> bool:
        breaker = self.breakers.get(location)
        return breaker is None or breaker.allows(self.clock)

    # -- fault application --------------------------------------------------

    def _apply_due_mutations(self) -> None:
        """Rewrite live leaves of byzantine-faulted locations.  A fault
        whose location has no live leaf yet stays armed."""
        due = self.fault_plan.due_mutations(
            self.clock, frozenset(self._applied_mutations))
        for fault in due:
            configuration = self.simulator.configuration
            touched = False
            for index, component in enumerate(configuration.components):
                tree = _rewrite_leaves(
                    component.tree, fault.location,
                    lambda term: mutate_term(term, self._fault_rng))
                if tree is not component.tree:
                    configuration = configuration.replace(
                        index, Component(component.history, tree))
                    touched = True
            if touched:
                self.simulator.configuration = configuration
                self._applied_mutations.add(fault)
                tel = _telemetry.active()
                if tel is not None:
                    tel.metrics.counter("resilience.faults_injected",
                                        kind="byzantine").inc()
                    self._note_fault(tel, fault)

    def _filtered(self) -> tuple[list[NetworkTransition],
                                 list[NetworkTransition],
                                 dict[int, Fault]]:
        """(raw, allowed, blocking fault per component) for this tick."""
        raw = self.simulator.available()
        allowed: list[NetworkTransition] = []
        blocking: dict[int, Fault] = {}
        tel = _telemetry.active()
        for transition in raw:
            before = self.simulator.configuration[
                transition.component].tree
            fault = self.fault_plan.blocking_fault(transition, before,
                                                   self.clock)
            if fault is not None:
                self.blocked_transitions += 1
                blocking.setdefault(transition.component, fault)
                if tel is not None:
                    tel.metrics.counter("resilience.faults_injected",
                                        kind=fault.kind).inc()
                    self._note_fault(tel, fault)
                continue
            if transition.rule == "open":
                target = self._open_target(transition, before)
                if target is not None and not self._breaker_allows(target):
                    self.blocked_transitions += 1
                    continue
            allowed.append(transition)
        return raw, allowed, blocking

    def _note_fault(self, tel, fault: Fault) -> None:
        """Record *fault* in the flight recorder exactly once (its event
        seq anchors every abort it later causes)."""
        if fault not in self._fault_events:
            event = tel.emit("fault.injected", kind=fault.kind,
                             location=fault.location,
                             request=fault.request, tick=self.clock)
            self._fault_events[fault] = event.seq

    def _abort_cause(self, index: int,
                     blocking: dict[int, Fault]) -> int | None:
        """The "fault.injected" seq behind component *index*'s abort:
        its blocking fault if one was recorded, otherwise the first
        recorded fault at a location the component is engaged with (the
        crash-starvation diagnosis path)."""
        fault = blocking.get(index)
        if fault is not None:
            return self._fault_events.get(fault)
        component = self.simulator.configuration[index]
        engaged = set(locations(component.tree))
        for fault, seq in self._fault_events.items():
            if fault.location and fault.location in engaged:
                return seq
        return None

    def _open_target(self, transition: NetworkTransition,
                     before) -> str | None:
        involved = involved_locations(
            before, transition.successor[transition.component].tree)
        targets = sorted(involved - {transition.location})
        return targets[0] if targets else None

    # -- session/breaker bookkeeping ----------------------------------------

    def _note_choice(self, allowed: list[NetworkTransition],
                     transition: NetworkTransition) -> None:
        """Checkpoint the choice *transition* resolves, before it fires.

        A fresh checkpoint is pushed when the firing component had two
        or more distinct enabled branch keys this tick.  If the
        component is re-choosing after a rollback, the restored
        checkpoint is re-pushed instead, with the taken branch added to
        its tried set — so no branch ever repeats from one checkpoint —
        and its ban is lifted.
        """
        if not self.rollback_policy.enabled:
            return
        index = transition.component
        fired = move_key(transition)
        pending = self._pending[index]
        if pending is not None:
            tried = pending.tried
            if fired in pending.alternatives:
                tried = tried | {fired}
            self._checkpoints[index].append(
                Checkpoint(component=index, snapshot=pending.snapshot,
                           targets=pending.targets,
                           alternatives=pending.alternatives, tried=tried,
                           tick=pending.tick, step=pending.step))
            self._pending[index] = None
            self._banned[index] = frozenset()
            return
        keys = {move_key(candidate) for candidate in allowed
                if candidate.component == index}
        if len(keys) < 2:
            return
        self._checkpoints[index].append(
            Checkpoint(component=index,
                       snapshot=self.simulator.configuration[index],
                       targets=tuple(self._session_targets[index]),
                       alternatives=frozenset(keys),
                       tried=frozenset({fired}),
                       tick=self.clock, step=len(self.simulator.log)))
        self.checkpoints_pushed += 1
        tel = _telemetry.active()
        if tel is not None:
            tel.metrics.counter("resilience.checkpoints").inc()
            tel.emit("checkpoint.push", component=index,
                     alternatives=len(keys), tick=self.clock,
                     step=len(self.simulator.log))

    def _note_fired(self, transition: NetworkTransition) -> None:
        stack = self._session_targets[transition.component]
        if transition.rule == "open":
            before = self.simulator.configuration[
                transition.component].tree
            target = self._open_target(transition, before)
            stack.append(target or transition.location)
        elif transition.rule == "close" and stack:
            location = stack.pop()
            breaker = self.breakers.get(location)
            if breaker is not None:
                breaker.record_success(self.clock)

    # -- the run ------------------------------------------------------------

    def run(self) -> SupervisorResult:
        """Drive the network to an outcome."""
        tel = _telemetry.active()
        if tel is None:
            status, diagnosis, cause = self._loop()
        else:
            with tel.tracer.span("supervisor.run",
                                 faults=len(self.fault_plan),
                                 recover=self.recover) as span:
                status, diagnosis, cause = self._loop()
                span.set(status=status, steps=len(self.simulator.log),
                         clock=self.clock, episodes=len(self.episodes))
                tel.emit("run.verdict", status=status,
                         steps=len(self.simulator.log), clock=self.clock,
                         cause=self._last_event_seq)
        return SupervisorResult(
            status=status,
            steps=len(self.simulator.log),
            clock=self.clock,
            diagnosis=diagnosis,
            episodes=self.episodes,
            faults=self.fault_plan.describe(),
            blocked_transitions=self.blocked_transitions,
            abort_cause=cause,
            breakers={location: list(breaker.transitions)
                      for location, breaker in sorted(self.breakers.items())},
            histories=self.simulator.histories())

    def _loop(self) -> tuple[str, str | None,
                             tuple[str | None, str | None] | None]:
        steps = 0
        while True:
            if steps >= self.max_steps:
                return ("budget-exhausted",
                        f"step budget of {self.max_steps} exhausted "
                        f"(moves may still be enabled)", None)
            if self.deadline is not None and self.clock >= self.deadline:
                return ("budget-exhausted",
                        f"deadline of {self.deadline} tick(s) exceeded",
                        None)
            self._apply_due_mutations()
            raw, allowed, blocking = self._filtered()
            allowed, barred = self._without_banned(allowed)
            if allowed:
                transition = self._rng.choice(allowed)
                self._note_choice(allowed, transition)
                self._note_fired(transition)
                self.simulator.fire(transition)
                self.clock += 1
                steps += 1
                continue
            if self.simulator.is_terminated():
                return "completed", None, None
            # -- nothing may fire: diagnose ---------------------------------
            component, trigger, suspects = self._diagnose(raw, blocking,
                                                          barred)
            tel = _telemetry.active()
            if tel is not None:
                abort = tel.emit("session.abort", component=component,
                                 trigger=trigger, tick=self.clock,
                                 cause=self._abort_cause(component,
                                                         blocking))
                self._last_event_seq = abort.seq
            if trigger == "security":
                cause = self.simulator._blame_blocked(
                    self.simulator.configuration[component],
                    self._plans[component])
                return ("security-violation",
                        f"component {component} security-stuck: policy "
                        f"{cause[0]} blocks {cause[1]}", cause)
            if not self.recover:
                return ("aborted",
                        f"component {component} {trigger} with recovery "
                        f"disabled (suspects: "
                        f"{', '.join(suspects) or 'none'})", None)
            episode = self._recover(component, trigger, suspects)
            if episode.outcome in ("rolled-back", "retried", "failed-over"):
                continue
            return "aborted", episode.describe(), None

    def _without_banned(self, allowed: list[NetworkTransition]
                        ) -> tuple[list[NetworkTransition], frozenset[int]]:
        """Drop transitions on branch keys banned by an active rollback;
        returns the survivors and the components that lost *every* move
        to a ban (the ``rollback-barred`` diagnosis)."""
        if not any(self._banned):
            return allowed, frozenset()
        kept: list[NetworkTransition] = []
        dropped: set[int] = set()
        for transition in allowed:
            if move_key(transition) in self._banned[transition.component]:
                dropped.add(transition.component)
            else:
                kept.append(transition)
        return kept, frozenset(dropped - {t.component for t in kept})

    def _diagnose(self, raw, blocking, barred: frozenset[int] = frozenset()
                  ) -> tuple[int, str, tuple[str, ...]]:
        """Pick the first blocked, non-terminated component and name the
        blockage and the suspect service locations."""
        configuration = self.simulator.configuration
        components_with_moves = {t.component for t in raw}
        for index, component in enumerate(configuration.components):
            if component.is_terminated():
                continue
            suspects = self._suspects(index)
            if index in blocking:
                fault = blocking[index]
                if fault.location:
                    # Blame precisely the faulted location: suspecting
                    # every session partner would exclude healthy
                    # services (the broker, say) from failover.
                    suspects = (fault.location,)
                elif fault.kind == "stall":
                    target = self._plans[index].lookup(fault.request)
                    if target is not None:
                        suspects = (target,)
                return index, "injected-blockage", suspects
            if index in barred:
                # Only rollback-banned branches remained: the restored
                # checkpoint's untried alternatives are themselves
                # blocked — recovery will rewind deeper.
                return index, "rollback-barred", suspects
            if index in components_with_moves:
                # Only breaker-barred moves remained.
                return index, "breaker-open", suspects
            verdict = classify_stuckness(component, self._plans[index],
                                         self.repository)
            if verdict == "security":
                if self._faulted_location_in(component):
                    # A crashed/deviant service starved the component of
                    # its valid moves — an injected fault, not a plan
                    # defect; recover instead of reporting a violation.
                    return index, "injected-blockage", suspects
                return index, "security", suspects
            if verdict == "communication":
                return index, "communication-stuck", suspects
        # Every non-terminated component looked fine individually (can
        # happen transiently); treat the first one as communication-stuck.
        for index, component in enumerate(configuration.components):
            if not component.is_terminated():
                return index, "communication-stuck", self._suspects(index)
        raise AssertionError("diagnosis requested on a terminated network")

    def _suspects(self, index: int) -> tuple[str, ...]:
        """The service locations a blocked component is engaged with
        (its session partners), falling back to its plan's targets."""
        component = self.simulator.configuration[index]
        client = self.client_locations[index]
        partners = set(locations(component.tree)) - {client}
        if partners:
            return tuple(sorted(partners))
        return tuple(sorted(self._plans[index].locations()))

    def _faulted_location_in(self, component: Component) -> bool:
        faulted = {fault.location for fault in self.fault_plan
                   if fault.kind in ("crash", "byzantine")
                   and fault.active(self.clock)}
        return bool(faulted & set(locations(component.tree)))

    def _recover(self, index: int, trigger: str,
                 suspects: tuple[str, ...]) -> RecoveryEpisode:
        episode = RecoveryEpisode(component=index, trigger=trigger,
                                  suspects=suspects,
                                  started_at=self.clock)
        self.episodes.append(episode)
        tel = _telemetry.active()
        span = (tel.tracer.start_span("supervisor.recovery",
                                      component=index, trigger=trigger)
                if tel is not None else None)
        try:
            self._recover_inner(index, episode)
        finally:
            episode.ended_at = self.clock
            if tel is not None:
                tel.metrics.counter("resilience.episodes",
                                    outcome=episode.outcome).inc()
                if span is not None:
                    span.set(outcome=episode.outcome,
                             rollbacks=episode.rollbacks,
                             retries=episode.retries,
                             replanned=episode.replanned)
                    tel.tracer.end_span(span)
        return episode

    def _pop_checkpoint(self, index: int) -> Checkpoint | None:
        """The nearest checkpoint of component *index* with an untried
        branch (exhausted ones are discarded on the way)."""
        stack = self._checkpoints[index]
        while stack:
            checkpoint = stack.pop()
            if checkpoint.untried:
                return checkpoint
        return None

    def _try_rollback(self, index: int,
                      episode: RecoveryEpisode) -> bool:
        """Rung 1 of the ladder: rewind to checkpoints with untried
        branches, exponential backoff between attempts.

        Each attempt restores the snapshot, bans the tried branch keys
        until the component's next firing, then waits one backoff delay
        — applying due fault mutations afterwards, so faults injected
        *during* the rollback are live before progress is re-checked.
        An attempt whose untried branches are themselves blocked simply
        rewinds deeper on the next iteration, until the per-episode
        budget or the checkpoint stack runs out.
        """
        policy = self.rollback_policy
        if not policy.enabled:
            return False
        tel = _telemetry.active()
        for attempt in range(policy.max_rollbacks):
            checkpoint = self._pop_checkpoint(index)
            if checkpoint is None:
                return False
            delay = min(self.backoff.base * self.backoff.factor ** attempt,
                        self.backoff.max_delay)
            episode.rollbacks += 1
            episode.waited_ticks += delay
            self.clock += delay
            self.simulator.configuration = \
                self.simulator.configuration.replace(index,
                                                     checkpoint.snapshot)
            self._session_targets[index] = list(checkpoint.targets)
            self._banned[index] = frozenset(checkpoint.tried)
            self._pending[index] = checkpoint
            if tel is not None:
                tel.metrics.counter("resilience.rollbacks").inc()
                self._last_event_seq = tel.emit(
                    "recovery.rollback", component=index,
                    to_tick=checkpoint.tick, to_step=checkpoint.step,
                    untried=len(checkpoint.untried), waited=delay,
                    tick=self.clock, cause=self._last_event_seq).seq
            self._apply_due_mutations()
            _raw, allowed, _blocking = self._filtered()
            allowed, _barred = self._without_banned(allowed)
            if allowed:
                episode.outcome = "rolled-back"
                return True
        return False

    def _drop_checkpoints(self, index: int) -> None:
        """Forget component *index*'s reversible-session state (its
        history is being rewritten by compensation — the snapshots no
        longer extend it)."""
        self._checkpoints[index] = []
        self._banned[index] = frozenset()
        self._pending[index] = None

    def _recover_inner(self, index: int,
                       episode: RecoveryEpisode) -> None:
        tel = _telemetry.active()
        # 1. Rollback-first: rewind to the last checkpoint and steer
        #    onto an untried branch.
        if self._try_rollback(index, episode):
            return
        # 2. Bounded retry: wait transient faults (and breaker
        #    cooldowns) out on the simulated clock.
        for delay in self.backoff.delays():
            episode.retries += 1
            episode.waited_ticks += delay
            self.clock += delay
            if tel is not None:
                tel.metrics.counter("resilience.retries").inc()
                self._last_event_seq = tel.emit(
                    "recovery.retry", component=episode.component,
                    waited=delay, tick=self.clock,
                    cause=self._last_event_seq).seq
            self._apply_due_mutations()
            _raw, allowed, _blocking = self._filtered()
            allowed, _barred = self._without_banned(allowed)
            if allowed:
                episode.outcome = "retried"
                return
        # 3. Failover: blame the suspects, re-plan around them, and
        #    compensate the component so its history stays consistent.
        for location in episode.suspects:
            self._breaker(location).record_failure(self.clock)
        episode.replanned = True
        if tel is not None:
            tel.metrics.counter("resilience.replans").inc()
        barred = {location for location, breaker in self.breakers.items()
                  if breaker.state == OPEN}
        excluded = tuple(sorted(
            set(episode.suspects) | barred
            | set(self.fault_plan.crashed_locations(self.clock))))
        client = self.client_locations[index]
        new_plan = replan(self.clients[client], self.repository,
                          previous=self._plans[index], excluded=excluded,
                          location=client)
        if new_plan is None:
            episode.outcome = "gave-up"
            if tel is not None:
                self._last_event_seq = tel.emit(
                    "recovery.gave-up", component=index,
                    excluded=", ".join(excluded), tick=self.clock,
                    cause=self._last_event_seq).seq
            return
        component = self.simulator.configuration[index]
        restarted = compensate(component, client, self.clients[client])
        self.simulator.configuration = \
            self.simulator.configuration.replace(index, restarted)
        self._drop_checkpoints(index)
        if tel is not None:
            self._last_event_seq = tel.emit(
                "recovery.compensate", component=index,
                tick=self.clock, cause=self._last_event_seq).seq
        self._plans[index] = new_plan
        self.simulator.plans = PlanVector(tuple(self._plans))
        self._session_targets[index] = []
        episode.outcome = "failed-over"
        episode.new_plan = str(new_plan)
        if tel is not None:
            self._last_event_seq = tel.emit(
                "recovery.replan", component=index,
                new_plan=str(new_plan),
                excluded=", ".join(excluded), tick=self.clock,
                cause=self._last_event_seq).seq


def _rewrite_leaves(tree, location: str, rewrite):
    """Apply *rewrite* to the term of every leaf at *location*; returns
    *tree* itself when nothing matched."""
    if isinstance(tree, Leaf):
        if tree.location != location:
            return tree
        term = rewrite(tree.term)
        return tree if term == tree.term else Leaf(location, term)
    left = _rewrite_leaves(tree.left, location, rewrite)
    right = _rewrite_leaves(tree.right, location, rewrite)
    if left is tree.left and right is tree.right:
        return tree
    from repro.network.config import SessionNode
    return SessionNode(left, right)

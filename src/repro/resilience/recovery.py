"""Recovery strategies: backoff, compensation and failover re-planning.

The supervisor composes three moves when a component stops making
progress:

* **bounded retry** — wait out transient faults on the *simulated*
  clock, with deterministic exponential backoff
  (:class:`BackoffPolicy`; no wall time anywhere, so chaos runs are
  reproducible byte for byte);
* **compensation** — tear the component's session tree down to its root
  client, appending the residual frame closes so the recorded history
  stays a valid prefix of a balanced history and any
  :class:`~repro.core.validity.ValidityMonitor` replaying it stays
  consistent (:func:`compensate`);
* **failover re-planning** — repair the plan through the memoized
  :func:`~repro.analysis.planner.find_valid_plans` path, pinning every
  binding that still points at a healthy location and freeing only the
  bindings routed to failed ones (:func:`replan`), exactly the re-wiring
  the valid-plan machinery permits.

Each recovery attempt is journalled in a :class:`RecoveryEpisode`, the
unit chaos reports and the property tests reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.planner import find_valid_plans
from repro.core.actions import FrameClose, FrameOpen
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.network.config import Component, Leaf
from repro.network.repository import Repository


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic exponential backoff on the simulated clock.

    Retry *i* (0-based) waits ``min(base * factor**i, max_delay)``
    ticks; after *max_retries* retries the strategy escalates to
    failover.
    """

    base: int = 1
    factor: int = 2
    max_delay: int = 8
    max_retries: int = 3

    def delays(self) -> Iterator[int]:
        """The successive wait times, in ticks."""
        for attempt in range(self.max_retries):
            yield min(self.base * self.factor ** attempt, self.max_delay)


@dataclass
class RecoveryEpisode:
    """One recovery attempt for one blocked component.

    ``trigger`` says why recovery started (``injected-blockage`` — a
    fault filter starved the component; ``communication-stuck`` — the
    semantics itself has no move; ``breaker-open`` — only breaker-barred
    moves remained; ``rollback-barred`` — only branches banned by an
    earlier rollback remained).  ``outcome`` is ``rolled-back`` (rewound
    to a checkpoint with an untried branch), ``retried`` (backoff waited
    the fault out), ``failed-over`` (compensated and re-planned) or
    ``gave-up`` (no healthy alternative — the run aborts with this
    episode as diagnosis).  ``rollbacks``, ``retries`` and ``replanned``
    are *distinct* counters: a rewind is never reported as a retry or a
    replan.
    """

    component: int
    trigger: str
    suspects: tuple[str, ...]
    started_at: int
    retries: int = 0
    rollbacks: int = 0
    waited_ticks: int = 0
    replanned: bool = False
    new_plan: str | None = None
    outcome: str = "pending"
    ended_at: int = 0

    def describe(self) -> str:
        suspects = ", ".join(self.suspects) or "none"
        extra = f" -> {self.new_plan}" if self.new_plan else ""
        return (f"component {self.component} {self.trigger} at tick "
                f"{self.started_at} (suspects: {suspects}): "
                f"{self.outcome} after {self.rollbacks} rollback(s), "
                f"{self.retries} retr(ies), "
                f"{self.waited_ticks} tick(s) waited{extra}")


def residual_frame_closes(component: Component) -> tuple[FrameClose, ...]:
    """The frame closes that balance the component's history: one ``Mφ``
    per still-open ``Lφ``, innermost first.

    This is the compensation analogue of the ``Φ`` of rule *Close* —
    instead of collecting the pending closes of one discarded service,
    it reads the open framings straight off the recorded history, so the
    appended closes match the activation stack exactly.
    """
    stack: list = []
    for label in component.history:
        if isinstance(label, FrameOpen):
            stack.append(label.policy)
        elif isinstance(label, FrameClose):
            if stack and stack[-1] == label.policy:
                stack.pop()
    return tuple(FrameClose(policy) for policy in reversed(stack))


def compensate(component: Component, client_location: str,
               client_term: HistoryExpression) -> Component:
    """Abort the component's open sessions cleanly.

    The session tree collapses to the root client restarted on
    *client_term*; the history keeps everything already observed and
    gains the residual frame closes, so it remains valid (frame closes
    never violate) and a prefix of a balanced history — the state a
    fresh :class:`~repro.core.validity.ValidityMonitor` can replay
    without desynchronising.
    """
    closes = residual_frame_closes(component)
    return Component(component.history.extend(closes),
                     Leaf(client_location, client_term))


def replan(client: HistoryExpression, repository: Repository,
           previous: Plan, excluded: tuple[str, ...],
           location: str = "client",
           max_plans: int | None = None) -> Plan | None:
    """A valid plan avoiding *excluded* locations, or ``None``.

    Only the affected bindings are repaired: every binding of
    *previous* that routes to a healthy location is pinned as the sole
    candidate for its request, so the memoized planner re-decides just
    the requests that lost their service (plus whatever security
    interplay the model checker must re-examine).
    """
    healthy = {loc: term for loc, term in repository.items()
               if loc not in excluded}
    if not healthy:
        return None
    candidates = {request: (target,)
                  for request, target in previous.items()
                  if target not in excluded}
    result = find_valid_plans(client, Repository(healthy, validate=False),
                              candidates=candidates, location=location,
                              max_plans=max_plans)
    best = result.best()
    return best.plan if best is not None else None

"""The deterministic chaos harness.

:func:`run_chaos` verifies a module once, then runs *trials* supervised
simulations of it, each under an independently sampled
:class:`~repro.resilience.faults.FaultPlan`, and checks the core
resilience invariant of this reproduction:

    starting from a **valid plan**, with recovery enabled, no trial ends
    in a security violation, and every trial either completes or aborts
    cleanly with a diagnosis.

The first half is the paper's Theorem 2 stress-tested under partial
failure — crashes, drops and stalls starve components but never push a
history past an active policy; the second half is the supervisor's
contract — it always knows *why* a run stopped.

Everything is seeded and runs on the simulated clock, so a report for a
given ``(module, seed, trials, kinds)`` tuple is reproducible byte for
byte (no wall time appears anywhere in the output).
"""

from __future__ import annotations

import json
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.verification import verify_network
from repro.core.errors import ReproError
from repro.core.validity import is_valid
from repro.network.repository import Repository
from repro.observability import runtime as _telemetry
from repro.resilience.checkpoints import RollbackPolicy
from repro.resilience.faults import module_requests, sample_fault_plan
from repro.resilience.recovery import BackoffPolicy
from repro.resilience.supervisor import Supervisor

#: Identifier of the JSON report layout below.  v2 added the rollback
#: knob and the per-trial/aggregate rollback counters.
CHAOS_SCHEMA = "repro-chaos.v2"


@dataclass(frozen=True)
class TrialResult:
    """One chaos trial, flattened for reporting."""

    trial: int
    seed: int
    faults: tuple[str, ...]
    status: str
    steps: int
    clock: int
    retries: int
    rollbacks: int
    replans: int
    episodes: tuple[str, ...]
    diagnosis: str | None
    histories_valid: bool
    breaker_transitions: tuple[tuple[str, str, str, int], ...]

    @property
    def diagnosed(self) -> bool:
        return self.status == "completed" or bool(self.diagnosis)

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "seed": self.seed,
            "faults": list(self.faults),
            "status": self.status,
            "steps": self.steps,
            "clock": self.clock,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "replans": self.replans,
            "episodes": list(self.episodes),
            "diagnosis": self.diagnosis,
            "histories_valid": self.histories_valid,
            "breaker_transitions": [list(t)
                                    for t in self.breaker_transitions],
        }


@dataclass
class ChaosReport:
    """The aggregate outcome of a chaos run."""

    module: str
    seed: int
    trials: int
    kinds: tuple[str, ...]
    recover: bool
    rollback: bool = True
    max_rollbacks: int = RollbackPolicy().max_rollbacks
    results: list[TrialResult] = field(default_factory=list)

    @property
    def outcomes(self) -> dict[str, int]:
        counts = Counter(result.status for result in self.results)
        return dict(sorted(counts.items()))

    @property
    def security_violations(self) -> int:
        return sum(1 for result in self.results
                   if result.status == "security-violation")

    @property
    def undiagnosed(self) -> int:
        return sum(1 for result in self.results if not result.diagnosed)

    @property
    def invalid_histories(self) -> int:
        return sum(1 for result in self.results
                   if not result.histories_valid)

    @property
    def invariant_holds(self) -> bool:
        """The chaos invariant (see module docstring)."""
        return (self.security_violations == 0
                and self.undiagnosed == 0
                and self.invalid_histories == 0)

    def to_dict(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "module": self.module,
            "seed": self.seed,
            "trials": self.trials,
            "kinds": list(self.kinds),
            "recover": self.recover,
            "rollback": self.rollback,
            "max_rollbacks": self.max_rollbacks,
            "outcomes": self.outcomes,
            "security_violations": self.security_violations,
            "undiagnosed": self.undiagnosed,
            "invalid_histories": self.invalid_histories,
            "invariant_holds": self.invariant_holds,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def render_text(self) -> str:
        lines = [
            f"chaos run over {self.module}: {self.trials} trial(s), "
            f"seed {self.seed}, faults {'+'.join(self.kinds)}, "
            f"recovery {'on' if self.recover else 'off'}, "
            f"rollback {'on' if self.rollback else 'off'}",
            "",
        ]
        for status, count in self.outcomes.items():
            lines.append(f"  {status:<20} {count}")
        lines.append("")
        total_retries = sum(result.retries for result in self.results)
        total_rollbacks = sum(result.rollbacks for result in self.results)
        total_replans = sum(result.replans for result in self.results)
        total_faults = sum(len(result.faults) for result in self.results)
        lines.append(f"  faults injected      {total_faults}")
        lines.append(f"  rollbacks            {total_rollbacks}")
        lines.append(f"  retries              {total_retries}")
        lines.append(f"  failover replans     {total_replans}")
        lines.append("")
        for result in self.results:
            if result.status == "completed" and not result.episodes:
                continue
            lines.append(f"  trial {result.trial:>3} [{result.status}]"
                         f" seed {result.seed}")
            for fault in result.faults:
                lines.append(f"      fault: {fault}")
            for episode in result.episodes:
                lines.append(f"      episode: {episode}")
            if result.diagnosis:
                lines.append(f"      diagnosis: {result.diagnosis}")
        lines.append("")
        verdict = "HOLDS" if self.invariant_holds else "VIOLATED"
        lines.append(
            f"invariant {verdict}: {self.security_violations} security "
            f"violation(s), {self.undiagnosed} undiagnosed trial(s), "
            f"{self.invalid_histories} invalid history(ies)")
        return "\n".join(lines)


def run_chaos(clients, repository: Repository, *,
              trials: int = 20,
              seed: int = 0,
              kinds: tuple[str, ...] = ("crash", "drop", "stall"),
              max_faults: int = 3,
              max_steps: int = 400,
              deadline: int | None = None,
              recover: bool = True,
              rollback: RollbackPolicy | bool = True,
              backoff: BackoffPolicy = BackoffPolicy(),
              breaker_threshold: int = 2,
              breaker_cooldown: int = 6,
              module: str = "module") -> ChaosReport:
    """Run *trials* seeded chaos trials of the module.

    The module is verified first; chaos only makes sense from a valid
    plan (that is the hypothesis of the invariant), so an unverified
    module raises :class:`ReproError` instead of producing a report.

    *rollback* selects the supervisor's rollback-first recovery (a
    :class:`RollbackPolicy`, or ``True``/``False`` for the default
    enabled/disabled policy); ``rollback=False`` reproduces the pure
    replan-from-scratch ladder — the baseline the R2 benchmark compares
    against.
    """
    rollback_policy = RollbackPolicy.of(rollback)
    tel = _telemetry.active()
    if tel is not None:
        with tel.events.session("verify"):
            verdict = verify_network(dict(clients), repository)
    else:
        verdict = verify_network(dict(clients), repository)
    if not verdict.verified:
        failing = ", ".join(client.location for client in verdict.clients
                            if not client.verified)
        raise ReproError(
            f"chaos requires a verified module: no valid plan for "
            f"client(s) {failing}")
    plans = verdict.plan_vector()
    requests = module_requests(clients, repository)
    rng = random.Random(seed)
    report = ChaosReport(module=module, seed=seed, trials=trials,
                         kinds=tuple(kinds), recover=recover,
                         rollback=rollback_policy.enabled,
                         max_rollbacks=rollback_policy.max_rollbacks)
    for trial in range(trials):
        trial_seed = rng.randrange(2 ** 32)
        fault_plan = sample_fault_plan(random.Random(trial_seed),
                                       repository, requests=requests,
                                       kinds=tuple(kinds),
                                       max_faults=max_faults)
        fault_plan = type(fault_plan)(fault_plan.faults, seed=trial_seed)
        supervisor = Supervisor(clients, plans, repository,
                                fault_plan=fault_plan,
                                recover=recover,
                                rollback=rollback_policy,
                                backoff=backoff,
                                breaker_threshold=breaker_threshold,
                                breaker_cooldown=breaker_cooldown,
                                max_steps=max_steps,
                                deadline=deadline,
                                seed=trial_seed)
        if tel is not None:
            # Every event of the trial — fault injections, aborts,
            # recoveries, the verdict — carries the trial's session id,
            # so a report can slice the flight recorder per trial.
            with tel.events.session(f"trial-{trial}"):
                result = supervisor.run()
        else:
            result = supervisor.run()
        breaker_transitions = tuple(
            (location, source, target, tick)
            for location, transitions in result.breakers.items()
            for source, target, tick in transitions)
        report.results.append(TrialResult(
            trial=trial,
            seed=trial_seed,
            faults=result.faults,
            status=result.status,
            steps=result.steps,
            clock=result.clock,
            retries=result.retries,
            rollbacks=result.rollbacks,
            replans=result.replans,
            episodes=tuple(episode.describe()
                           for episode in result.episodes),
            diagnosis=result.diagnosis,
            histories_valid=all(is_valid(history)
                                for history in result.histories),
            breaker_transitions=breaker_transitions))
        if tel is not None:
            tel.metrics.counter("chaos.trials",
                                status=result.status).inc()
    return report

"""repro — Secure and Unfailing Services.

A complete implementation of the formal theory of Basile, Degano and
Ferrari, *Secure and Unfailing Services* (2013): history expressions with
channel communication and sessions, usage-automata security policies,
history validity, behavioural contracts, service compliance via product
automata, network semantics with plans, and the static analysis that
constructs *valid plans* — orchestrations under which neither security
violations nor stuck communications can occur, so no run-time monitor is
needed.

Quickstart::

    from repro import parse, Repository, verify_client
    from repro.policies import never_after

    phi = never_after("write", "read")
    client = parse("open r with phi { !job . ?done }",
                   policies={"phi": phi})
    repo = Repository({"worker": parse("?job . { @write(1) ; !done }")})
    verdict = verify_client(client, repo)
    assert verdict.verified and str(verdict.plan.plan) == "r[worker]"

See README.md for the full tour and DESIGN.md for the paper-to-module
map.
"""

from repro.core.actions import Event, Receive, Send, Tau, TAU, co
from repro.core.compliance import (ComplianceResult, check_compliance,
                                   compliant, compliant_coinductive)
from repro.core.plans import Plan, PlanVector
from repro.core.duality import dual
from repro.core.projection import project
from repro.core.ready_sets import ready_sets
from repro.core.semantics import enabled_labels, step, successors
from repro.core.syntax import (EPSILON, Epsilon, EventNode, ExternalChoice,
                               Framing, HistoryExpression, InternalChoice,
                               Mu, Request, Seq, Var, event, external,
                               framing, internal, mu, receive, request, send,
                               seq)
from repro.core.validity import (EMPTY_HISTORY, History, ValidityMonitor,
                                 first_invalid_prefix, is_valid)
from repro.core.wellformed import check_well_formed, is_well_formed
from repro.contracts import Contract, build_product
from repro.policies.usage_automata import Policy, UsageAutomaton
from repro.network.config import Component, Configuration, Leaf, SessionNode
from repro.network.explorer import explore, plan_is_valid_exhaustive
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.analysis.planner import (analyze_plan, enumerate_plans,
                                    find_valid_plans)
from repro.analysis.verification import (NetworkVerdict, verify_client,
                                         verify_network)
from repro.lang.parser import parse
from repro.lang.pretty import pretty

__version__ = "1.0.0"

__all__ = [
    # actions
    "Event", "Receive", "Send", "Tau", "TAU", "co",
    # syntax
    "EPSILON", "Epsilon", "EventNode", "ExternalChoice", "Framing",
    "HistoryExpression", "InternalChoice", "Mu", "Request", "Seq", "Var",
    "event", "external", "framing", "internal", "mu", "receive", "request",
    "send", "seq",
    # semantics
    "enabled_labels", "step", "successors",
    # projection / ready sets / compliance
    "dual", "project", "ready_sets", "ComplianceResult", "check_compliance",
    "compliant", "compliant_coinductive", "Contract", "build_product",
    # validity
    "EMPTY_HISTORY", "History", "ValidityMonitor", "first_invalid_prefix",
    "is_valid", "check_well_formed", "is_well_formed",
    # policies
    "Policy", "UsageAutomaton",
    # plans & network
    "Plan", "PlanVector", "Component", "Configuration", "Leaf",
    "SessionNode", "Repository", "Simulator", "explore",
    "plan_is_valid_exhaustive",
    # analysis
    "analyze_plan", "enumerate_plans", "find_valid_plans",
    "NetworkVerdict", "verify_client", "verify_network",
    # language
    "parse", "pretty",
    "__version__",
]

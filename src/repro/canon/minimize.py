"""Bisimulation minimization of compiled contract tables.

A :class:`QuotientContract` is the quotient of a
:class:`~repro.compiled.tables.CompiledContract` by strong bisimilarity
over communication moves, computed by Moore-style partition refinement
directly on the integer tables: the initial partition separates states
by termination flag and enabled label set, and each round re-keys every
state by its block plus the multiset of ``label → successor-block-set``
edges until the partition stabilises.

Because every reachable contract state is *homogeneous-mode* (its moves
are all outputs or all inputs — internal and external choices never
mix, and a projected ``Seq`` head can either move or terminate, never
both), a state's ready sets are a function of its ``out_mask``,
``in_mask`` and move-lessness.  Bisimilar states therefore have equal
ready sets, and the Definition-5 stuck check — which reads only the
masks and termination flags of a pair — cannot distinguish a state from
its block representative: quotienting preserves compliance verdicts
exactly.  The quotient duck-types the table protocol consumed by
:func:`repro.compiled.search.compiled_search`, so the product-emptiness
BFS runs on quotients unchanged (``compiled_relation`` is the one
consumer that does not apply: its canonical move order re-derives state
``repr``s through the compiled-table memo, which indexes source states,
not blocks).

Blocks are numbered in first-seen source-state order, so block 0 always
contains source state 0 (the initial state) and the representative of a
block is its lowest-numbered member — deterministic for a fixed term,
whatever the interning history.

The quotient memo is tracked as ``canon.quotient`` and cleared through
the ``clear_contract_caches`` cascade (the tables embed process-global
label ids, so they must never outlive the label intern table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.compiled.tables import CompiledContract, _compile
from repro.contracts.contract import Contract
from repro.core.syntax import HistoryExpression
from repro.observability import runtime as _telemetry

#: Entries kept in the quotient memo (same trade-off as the compiled
#: table memo it derives from).
QUOTIENT_CACHE_SIZE = 1024


@dataclass(frozen=True)
class QuotientContract:
    """The bisimulation quotient of one contract's transition tables.

    The table fields mirror :class:`CompiledContract` state for state —
    indexed by *block* id — so the compiled product search runs on a
    quotient exactly as on the original tables.  ``terms[b]`` is the
    representative history expression of block ``b`` (its
    lowest-numbered member in LTS construction order; block 0 holds the
    initial state), ``block_of[i]`` the block of source state ``i``.
    """

    term: HistoryExpression
    terms: tuple[HistoryExpression, ...]
    state_id: dict[HistoryExpression, int]
    moves: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]
    by_label: tuple[dict[int, tuple[int, ...]], ...]
    out_mask: tuple[int, ...]
    in_mask: tuple[int, ...]
    terminated: tuple[bool, ...]
    block_of: tuple[int, ...] = field(compare=False)
    n_source_states: int = 0

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def n_blocks(self) -> int:
        return len(self.terms)

    @property
    def is_minimal(self) -> bool:
        """Was the source LTS already its own quotient?"""
        return len(self.terms) == self.n_source_states


def minimize(contract: Contract | HistoryExpression) -> QuotientContract:
    """The memoised bisimulation quotient of *contract* (terms accepted
    too; unprojected terms are projected first)."""
    term = contract.term if isinstance(contract, Contract) else \
        Contract(contract).term
    return _quotient(term)


@lru_cache(maxsize=QUOTIENT_CACHE_SIZE)
def _quotient(term: HistoryExpression) -> QuotientContract:
    tel = _telemetry.active()
    if tel is None:
        return _build_quotient(_compile(term))
    with tel.tracer.span("canon.minimize") as span:
        started = time.perf_counter()
        compiled = _compile(term)
        quotient = _build_quotient(compiled)
        metrics = tel.metrics
        metrics.counter("canon.minimizations").inc()
        metrics.counter("canon.states_in").inc(len(compiled))
        metrics.counter("canon.blocks_out").inc(len(quotient))
        metrics.histogram("canon.minimize.seconds").observe(
            time.perf_counter() - started)
        span.set(states=len(compiled), blocks=len(quotient))
        tel.emit("canon.minimized", states=len(compiled),
                 blocks=len(quotient), minimal=quotient.is_minimal)
    return quotient


def _build_quotient(compiled: CompiledContract) -> QuotientContract:
    block = _refine(compiled)
    n_blocks = max(block) + 1

    # Representative per block: its first member in state order (block
    # ids are assigned in first-seen order, so this scan is linear).
    representative = [-1] * n_blocks
    for state, b in enumerate(block):
        if representative[b] < 0:
            representative[b] = state

    def map_targets(targets: tuple[int, ...]) -> tuple[int, ...]:
        seen: set[int] = set()
        mapped: list[int] = []
        for target in targets:
            block_id = block[target]
            if block_id not in seen:
                seen.add(block_id)
                mapped.append(block_id)
        return tuple(mapped)

    terms = tuple(compiled.terms[rep] for rep in representative)
    moves = tuple(
        tuple((co_label, map_targets(targets))
              for co_label, targets in compiled.moves[rep])
        for rep in representative)
    by_label = tuple(
        {label_id: map_targets(targets)
         for label_id, targets in compiled.by_label[rep].items()}
        for rep in representative)
    return QuotientContract(
        term=compiled.term, terms=terms,
        state_id={state: index for index, state in enumerate(terms)},
        moves=moves, by_label=by_label,
        out_mask=tuple(compiled.out_mask[rep] for rep in representative),
        in_mask=tuple(compiled.in_mask[rep] for rep in representative),
        terminated=tuple(compiled.terminated[rep]
                         for rep in representative),
        block_of=tuple(block), n_source_states=len(compiled))


def _refine(compiled: CompiledContract) -> list[int]:
    """Block id per source state under the coarsest bisimulation.

    Moore iteration: start from (terminated, enabled-label-set) classes
    and re-key by (block, per-label successor-block sets) until stable.
    Ids are assigned in first-seen state order each round, which makes
    the final numbering deterministic and puts state 0 in block 0.
    """
    n = len(compiled.terms)
    terminated = compiled.terminated
    by_label = compiled.by_label
    block = _assign(
        (terminated[i], tuple(sorted(by_label[i]))) for i in range(n))
    while True:
        refined = _assign(
            (block[i], tuple(sorted(
                (label_id, tuple(sorted({block[t] for t in targets})))
                for label_id, targets in by_label[i].items())))
            for i in range(n))
        if refined == block:
            return block
        block = refined


def _assign(keys) -> list[int]:
    """Dense ids for *keys* in first-occurrence order."""
    ids: dict = {}
    out: list[int] = []
    for key in keys:
        found = ids.get(key)
        if found is None:
            found = len(ids)
            ids[key] = found
        out.append(found)
    return out

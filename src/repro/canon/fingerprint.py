"""Canonical forms: order-independent fingerprints and signatures.

A :class:`CanonicalForm` is a fully canonical rendering of a contract's
bisimulation quotient: block numbering is derived from iterated
refinement digests, not from interning history, so two contracts get
equal canonical forms **iff** their quotients are isomorphic as pointed
labelled graphs — i.e. iff the contracts are bisimilar.  The
``fingerprint`` is a SHA-256 over that canonical table; exact equality
checks compare the tables themselves, so a (cosmically unlikely) hash
collision can never conflate two distinct contracts.

Canonical numbering works like Weisfeiler–Leman colour refinement on
the quotient: every block starts with a digest of its termination flag
and enabled ``(direction, channel)`` pairs — label *content*, never
label ids, so the result is invariant under interning order — and each
round re-digests ``(terminated, sorted (direction, channel,
successor-digest-multiset) edges)``.  The blocks of a minimal quotient
are pairwise non-bisimilar, and digest refinement *is* partition
refinement, so after at most ``n`` rounds every block has a unique
digest; sorting blocks by final digest yields a numbering independent
of state order, relabeling, and process history.

A :class:`Signature` summarises the ready-set shape of a contract — its
initial mode, initial output/input channel sets, termination flag, and
whole-alphabet channel sets.  Signatures are the registry's bucket
keys: the Definition-5 stuck check at the *initial* product pair reads
exactly the fields a signature records, so one mask test per bucket
soundly prunes every member at once.

The canonical-form memo is tracked as ``canon.fingerprint`` and cleared
through the ``clear_contract_caches`` cascade.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.canon.minimize import QuotientContract, minimize
from repro.compiled.tables import LABELS
from repro.contracts.contract import Contract
from repro.core.actions import is_output
from repro.core.syntax import HistoryExpression
from repro.observability import runtime as _telemetry

#: Entries kept in the canonical-form memo.
CANONICAL_CACHE_SIZE = 1024

#: One canonical block: (terminated, sorted (direction, channel,
#: sorted-canonical-target-tuple) moves).
CanonicalBlock = tuple[bool, tuple[tuple[str, str, tuple[int, ...]], ...]]


@dataclass(frozen=True)
class Signature:
    """The ready-set summary of a contract, as sorted channel names.

    ``mode`` describes the initial state: ``"output"`` (an internal
    choice: singleton output ready sets), ``"input"`` (an external
    choice: one input ready set), or ``"quiescent"`` (no communication
    moves — terminated or stuck).
    """

    mode: str
    initial_outputs: tuple[str, ...]
    initial_inputs: tuple[str, ...]
    initial_terminated: bool
    alphabet_outputs: tuple[str, ...]
    alphabet_inputs: tuple[str, ...]

    def to_json(self) -> dict:
        return {"mode": self.mode,
                "initial_outputs": list(self.initial_outputs),
                "initial_inputs": list(self.initial_inputs),
                "initial_terminated": self.initial_terminated,
                "alphabet_outputs": list(self.alphabet_outputs),
                "alphabet_inputs": list(self.alphabet_inputs)}


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical quotient of one contract.

    ``table[b]`` describes canonical block ``b``; ``initial`` is the
    canonical id of the initial block.  ``fingerprint`` is the SHA-256
    hex digest of ``(initial, table)`` — compare :attr:`key` (or whole
    forms) for collision-free equality.
    """

    fingerprint: str
    initial: int
    table: tuple[CanonicalBlock, ...]
    signature: Signature
    n_blocks: int
    n_source_states: int

    @property
    def key(self) -> tuple:
        """The exact canonical identity (hash-collision-free)."""
        return (self.initial, self.table)

    def to_json(self) -> dict:
        return {"fingerprint": self.fingerprint,
                "blocks": self.n_blocks,
                "states": self.n_source_states,
                "minimal": self.n_blocks == self.n_source_states,
                "signature": self.signature.to_json()}


def canonicalize(contract: Contract | HistoryExpression) -> CanonicalForm:
    """The memoised canonical form of *contract* (terms accepted too)."""
    term = contract.term if isinstance(contract, Contract) else \
        Contract(contract).term
    return _canonical(term)


def fingerprint_of(contract: Contract | HistoryExpression) -> str:
    """The canonical SHA-256 fingerprint of *contract*."""
    return canonicalize(contract).fingerprint


def signature_of(contract: Contract | HistoryExpression) -> Signature:
    """The ready-set signature of *contract*."""
    return canonicalize(contract).signature


def canonically_equal(a: Contract | HistoryExpression,
                      b: Contract | HistoryExpression) -> bool:
    """Are the two contracts bisimilar?  Decided by exact canonical-form
    equality (never by fingerprint alone)."""
    return canonicalize(a).key == canonicalize(b).key


@lru_cache(maxsize=CANONICAL_CACHE_SIZE)
def _canonical(term: HistoryExpression) -> CanonicalForm:
    tel = _telemetry.active()
    if tel is None:
        return _canonical_of(_quotient_for(term))
    with tel.tracer.span("canon.fingerprint") as span:
        started = time.perf_counter()
        form = _canonical_of(_quotient_for(term))
        tel.metrics.counter("canon.fingerprints").inc()
        tel.metrics.histogram("canon.fingerprint.seconds").observe(
            time.perf_counter() - started)
        span.set(blocks=form.n_blocks)
        tel.emit("canon.fingerprint", blocks=form.n_blocks,
                 fingerprint=form.fingerprint[:16])
    return form


def _quotient_for(term: HistoryExpression) -> QuotientContract:
    from repro.canon.minimize import _quotient
    return _quotient(term)


def _channels_of(mask: int) -> tuple[str, ...]:
    """Sorted channel names of a channel bitmask."""
    values = LABELS.channels.values
    names = []
    bit = 0
    while mask:
        if mask & 1:
            names.append(str(values[bit]))
        mask >>= 1
        bit += 1
    return tuple(sorted(names))


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _canonical_of(quotient: QuotientContract) -> CanonicalForm:
    n = len(quotient)
    labels = LABELS.labels.values
    # Decode each block's moves once: (direction, channel, targets).
    decoded: list[list[tuple[str, str, tuple[int, ...]]]] = []
    for b in range(n):
        entries = []
        for label_id, targets in quotient.by_label[b].items():
            label = labels[label_id]
            direction = "!" if is_output(label) else "?"
            entries.append((direction, str(label.channel), targets))
        decoded.append(entries)

    digests = [
        _digest(("canon-init", quotient.terminated[b],
                 sorted((direction, channel)
                        for direction, channel, _ in decoded[b])))
        for b in range(n)]
    # Refine until all blocks are separated.  Minimality guarantees
    # separation within n rounds (refinement reaches the discrete
    # partition of a minimal quotient); the +1 margin is defensive.
    for _ in range(n + 1):
        if len(set(digests)) == n:
            break
        # Each block's previous digest joins the payload, so a round can
        # only split classes, never re-merge them: plain monotone
        # partition refinement, digest-encoded.
        digests = [
            _digest((digests[b], quotient.terminated[b],
                     sorted((direction, channel,
                             tuple(sorted(digests[t] for t in targets)))
                            for direction, channel, targets
                            in decoded[b])))
            for b in range(n)]
    if len(set(digests)) != n:  # pragma: no cover - minimality violated
        raise RuntimeError("canonical refinement failed to separate "
                           "non-bisimilar quotient blocks")

    order = sorted(range(n), key=digests.__getitem__)
    canonical_id = [0] * n
    for position, b in enumerate(order):
        canonical_id[b] = position
    table = tuple(
        (quotient.terminated[b],
         tuple(sorted(
             (direction, channel,
              tuple(sorted(canonical_id[t] for t in targets)))
             for direction, channel, targets in decoded[b])))
        for b in order)
    initial = canonical_id[0]

    alphabet_out = 0
    alphabet_in = 0
    for b in range(n):
        alphabet_out |= quotient.out_mask[b]
        alphabet_in |= quotient.in_mask[b]
    initial_out = quotient.out_mask[0]
    initial_in = quotient.in_mask[0]
    if initial_out:
        mode = "output"
    elif initial_in:
        mode = "input"
    else:
        mode = "quiescent"
    signature = Signature(
        mode=mode,
        initial_outputs=_channels_of(initial_out),
        initial_inputs=_channels_of(initial_in),
        initial_terminated=quotient.terminated[0],
        alphabet_outputs=_channels_of(alphabet_out),
        alphabet_inputs=_channels_of(alphabet_in))
    return CanonicalForm(
        fingerprint=_digest((initial, table)),
        initial=initial, table=table, signature=signature,
        n_blocks=n, n_source_states=quotient.n_source_states)

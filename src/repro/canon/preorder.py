"""The subcontract preorder ``H1 ≼ H2``, decided on quotient tables.

``H1 ≼ H2`` holds when every client compliant with server ``H1`` is
compliant with server ``H2`` — the server-substitutability preorder of
Castagna–Gesbert–Padovani, the relation behind contract-based service
discovery.  The decider here is **exact** for the contracts of this
calculus, unlike the interpreted
:func:`repro.contracts.subcontract.subcontract`, whose ready-set
inclusion test is conservative on external choices (it can reject
substitutions no client can distinguish; the property suite
cross-validates that every interpreted ``True`` is confirmed here).

Exactness comes from the homogeneous-mode shape of contract states (a
state's moves are all outputs or all inputs), which collapses the meet
analysis to bitmask arithmetic on the bisimulation quotients.  The BFS
explores pairs of *meet states* — the sets of server states a client
may face after one observable interaction sequence — and classifies
each left meet:

* **vacuous**: some member offers nothing, or members mix sending and
  waiting, or the waiting members share no common input.  Only the
  terminated client complies with the left meet from here, and ``ε``
  complies with everything — nothing to check, nothing to explore;
* **output mode** (every member sends; ``out_bits`` = the union of
  their output channels): a compliant client must be ready to receive
  all of ``out_bits``.  A right member refuses iff it emits a channel
  outside ``out_bits`` or emits nothing at all (waits or stops while
  the client is listening);
* **input mode** (every member waits; ``common`` = the intersection of
  their input channels): a compliant client may only send channels in
  ``common``.  A right member refuses iff it emits anything, waits for
  none of ``common``'s channels, or misses one of them.

Exploration follows exactly the client-realizable actions — receive
each of ``out_bits`` (skipping channels no right resolution emits), or
send each channel of ``common`` — with successors as member-wise meet
unions.  No reachable refusal means ``H1 ≼ H2``.

Every refusal is packaged as a :class:`PreorderWitness` carrying a
*synthesized separating client*: an external choice tower (output-mode
steps) and single sends (input-mode steps) replaying the path, with
``ε`` escape hatches off the path.  By construction the client complies
with ``H1`` and reaches a Definition-5 stuck pair with ``H2`` —
:meth:`PreorderWitness.replays` re-checks both facts through any of the
four compliance engines.

The decision memo is tracked as ``canon.preorder`` and cleared through
the ``clear_contract_caches`` cascade.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from functools import lru_cache

from repro.canon.minimize import QuotientContract, minimize
from repro.compiled.tables import LABELS
from repro.contracts.contract import Contract
from repro.core.actions import Label, Receive, Send
from repro.core.errors import StateSpaceLimitError
from repro.core.syntax import (EPSILON, HistoryExpression, external, send)
from repro.observability import runtime as _telemetry

#: Entries kept in the preorder memo.
PREORDER_CACHE_SIZE = 4096

#: Bound on explored meet pairs (the meet space is exponential in the
#: worst case; real contracts stay tiny).
MAX_MEET_PAIRS = 200_000

#: A meet state over quotient blocks, as a sorted id tuple.
_Meet = tuple[int, ...]


@dataclass(frozen=True)
class PreorderWitness:
    """Evidence that ``smaller ⋠ larger``.

    ``path`` is the server-side action sequence (``Send`` = both servers
    emit, the client receives; ``Receive`` = both servers wait, the
    client sends) leading to the refusing meet; ``refusing_state`` a
    state ``larger`` may reach along it that the synthesized ``client``
    cannot handle; ``client`` the separating client itself.
    """

    smaller: HistoryExpression
    larger: HistoryExpression
    path: tuple[Label, ...]
    client: HistoryExpression
    refusing_state: HistoryExpression
    reason: str

    def replays(self, *, engine: str = "onthefly") -> bool:
        """Does the witness replay concretely: ``client ⊢ smaller`` and
        ``client ⊬ larger`` under *engine*?"""
        from repro.core.compliance import check_compliance
        return (check_compliance(self.client, self.smaller,
                                 engine=engine).compliant
                and not check_compliance(self.client, self.larger,
                                         engine=engine).compliant)

    def describe(self) -> str:
        """One-line human rendering of the refusal."""
        rendered = ".".join(
            (f"!{label.channel}" if isinstance(label, Send)
             else f"?{label.channel}") for label in self.path) or "ε"
        return (f"after {rendered}, the larger server may reach "
                f"{self.refusing_state} — {self.reason}")


@dataclass(frozen=True)
class PreorderResult:
    """Outcome of a preorder decision: the verdict, a witness when it
    fails, and the number of meet pairs explored."""

    holds: bool
    witness: PreorderWitness | None
    pairs: int

    def __bool__(self) -> bool:
        return self.holds


def subcontract_preorder(smaller: Contract | HistoryExpression,
                         larger: Contract | HistoryExpression
                         ) -> PreorderResult:
    """Decide ``smaller ≼ larger`` (memoised; exact)."""
    t1 = smaller.term if isinstance(smaller, Contract) else \
        Contract(smaller).term
    t2 = larger.term if isinstance(larger, Contract) else \
        Contract(larger).term
    return _preorder(t1, t2)


def preorder_equivalent(a: Contract | HistoryExpression,
                        b: Contract | HistoryExpression) -> bool:
    """Mutual refinement: the servers are substitutable both ways."""
    return subcontract_preorder(a, b).holds and \
        subcontract_preorder(b, a).holds


@lru_cache(maxsize=PREORDER_CACHE_SIZE)
def _preorder(t1: HistoryExpression, t2: HistoryExpression
              ) -> PreorderResult:
    tel = _telemetry.active()
    if tel is None:
        return _decide(minimize(t1), minimize(t2))
    with tel.tracer.span("canon.preorder") as span:
        started = time.perf_counter()
        result = _decide(minimize(t1), minimize(t2))
        tel.metrics.counter(
            "canon.preorder.checks",
            verdict="holds" if result.holds else "refused").inc()
        tel.metrics.histogram("canon.preorder.seconds").observe(
            time.perf_counter() - started)
        span.set(holds=result.holds, pairs=result.pairs)
        tel.emit("canon.preorder", holds=result.holds, pairs=result.pairs)
    return result


# -- meet analysis -----------------------------------------------------------

def _left_analysis(quotient: QuotientContract, meet: _Meet
                   ) -> tuple[str, int]:
    """Classify the left meet: ``("vacuous", 0)``, ``("output",
    out_bits)`` or ``("input", common)``."""
    out_mask = quotient.out_mask
    in_mask = quotient.in_mask
    out_bits = 0
    common = -1
    has_out = False
    has_in = False
    for member in meet:
        om = out_mask[member]
        im = in_mask[member]
        if not (om | im):
            # The server may stop dead here: any non-terminated client
            # residual deadlocks, so only ε complies.
            return ("vacuous", 0)
        if om:
            has_out = True
            out_bits |= om
        if im:
            has_in = True
            common &= im
    if has_out and has_in:
        # Mixed modes: a client choice is homogeneous, it cannot listen
        # for one member's output and feed another member's input.
        return ("vacuous", 0)
    if has_out:
        return ("output", out_bits)
    if common == 0:
        # The waiting members accept no common channel: no single client
        # send satisfies them all.
        return ("vacuous", 0)
    return ("input", common)


def _refusal(quotient: QuotientContract, meet: _Meet, mode: str,
             bits: int) -> tuple[int, int, str] | None:
    """The first right member a compliant-with-left client cannot
    handle: ``(member, discriminating-channel-mask, reason)``."""
    out_mask = quotient.out_mask
    in_mask = quotient.in_mask
    for member in meet:
        om = out_mask[member]
        im = in_mask[member]
        if mode == "output":
            if om == 0:
                return (member, 0,
                        "it emits nothing while the client is committed "
                        "to receiving")
            unmatched = om & ~bits
            if unmatched:
                return (member, unmatched,
                        "it emits a channel the smaller server never "
                        "emits here")
        else:
            if om:
                return (member, bits,
                        "it emits while every client send is unmatched "
                        "by its own inputs")
            if im == 0:
                return (member, bits,
                        "it accepts nothing while the client must send")
            missing = bits & ~im
            if missing:
                return (member, missing,
                        "it misses an input every resolution of the "
                        "smaller server accepts")
    return None


def _channel_names(mask: int) -> tuple[str, ...]:
    """Sorted channel names of a bitmask."""
    values = LABELS.channels.values
    names = []
    bit = 0
    while mask:
        if mask & 1:
            names.append(str(values[bit]))
        mask >>= 1
        bit += 1
    return tuple(sorted(names))


def _lowest_channel(mask: int) -> str:
    """The channel of the lowest set bit (deterministic pick)."""
    bit = (mask & -mask).bit_length() - 1
    return str(LABELS.channels.values[bit])


def _meet_step(quotient: QuotientContract, meet: _Meet,
               label_id: int) -> _Meet:
    """Member-wise meet successor along one server-side label."""
    targets: set[int] = set()
    for member in meet:
        found = quotient.by_label[member].get(label_id)
        if found:
            targets.update(found)
    return tuple(sorted(targets))


# -- decision ----------------------------------------------------------------

def _decide(q1: QuotientContract, q2: QuotientContract) -> PreorderResult:
    initial: tuple[_Meet, _Meet] = ((0,), (0,))
    parents: dict[tuple[_Meet, _Meet],
                  tuple[tuple[_Meet, _Meet], str, str] | None] = {
        initial: None}
    frontier: deque[tuple[_Meet, _Meet]] = deque((initial,))
    pairs = 0
    while frontier:
        key = frontier.popleft()
        m1, m2 = key
        pairs += 1
        if pairs > MAX_MEET_PAIRS:
            raise StateSpaceLimitError(MAX_MEET_PAIRS, "preorder meets")
        mode, bits = _left_analysis(q1, m1)
        if mode == "vacuous":
            continue
        refused = _refusal(q2, m2, mode, bits)
        if refused is not None:
            return PreorderResult(
                False, _build_witness(q1, q2, key, parents, mode, bits,
                                      refused), pairs)
        for channel in _channel_names(bits):
            label = Send(channel) if mode == "output" else Receive(channel)
            label_id = LABELS.intern(label)
            n2 = _meet_step(q2, m2, label_id)
            if not n2:
                # No right resolution follows this channel (output mode
                # only: the refusal check above guarantees input-mode
                # successors).  The client branch is never exercised
                # against the larger server — nothing to refute there.
                continue
            successor = (_meet_step(q1, m1, label_id), n2)
            if successor not in parents:
                parents[successor] = (key, mode, channel)
                frontier.append(successor)
    return PreorderResult(True, None, pairs)


def _build_witness(q1: QuotientContract, q2: QuotientContract,
                   key: tuple[_Meet, _Meet],
                   parents: dict, mode: str, bits: int,
                   refused: tuple[int, int, str]) -> PreorderWitness:
    member, disc_mask, reason = refused

    # Reconstruct the action path: (meet-pair, mode-at-source, channel).
    steps: list[tuple[tuple[_Meet, _Meet], str, str]] = []
    node = key
    while parents[node] is not None:
        previous, step_mode, channel = parents[node]
        steps.append((previous, step_mode, channel))
        node = previous
    steps.reverse()

    # The discriminating tail at the refusing meet: in output mode the
    # client listens for every channel the smaller server may emit (the
    # refusing member emits none of them, or something else entirely);
    # in input mode it sends one channel every smaller-server resolution
    # accepts and the refusing member does not.
    if mode == "output":
        tail: HistoryExpression = external(
            *((channel, EPSILON) for channel in _channel_names(bits)))
    else:
        tail = send(_lowest_channel(disc_mask if disc_mask else bits))

    # Fold the path backwards into a client: each output-mode step is an
    # external choice over the step meet's out_bits — the path channel
    # continues, the others terminate (ε complies with everything); each
    # input-mode step is the single matching send.
    client = tail
    for step_key, step_mode, channel in reversed(steps):
        if step_mode == "output":
            _, step_bits = _left_analysis(q1, step_key[0])
            client = external(
                *((offered, client if offered == channel else EPSILON)
                  for offered in _channel_names(step_bits)))
        else:
            client = send(channel, client)

    path = tuple(
        Send(channel) if step_mode == "output" else Receive(channel)
        for _, step_mode, channel in steps)
    return PreorderWitness(
        smaller=q1.term, larger=q2.term, path=path, client=client,
        refusing_state=q2.terms[member], reason=reason)

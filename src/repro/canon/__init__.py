"""Canonical contract analysis over the compiled core.

Three passes, each memoised per projected term:

* :func:`minimize` — the bisimulation quotient of a contract's compiled
  transition tables (:mod:`repro.canon.minimize`);
* :func:`canonicalize` / :func:`fingerprint_of` / :func:`signature_of`
  — the order-independent canonical form, SHA-256 fingerprint and
  ready-set signature of the quotient (:mod:`repro.canon.fingerprint`);
* :func:`subcontract_preorder` — the exact server-substitutability
  preorder ``H1 ≼ H2`` with replayable counterexample witnesses
  (:mod:`repro.canon.preorder`).

All three memo tables are tracked (``canon.quotient``,
``canon.fingerprint``, ``canon.preorder``), surveyed by
``contract_cache_stats()`` and dropped by the
``clear_contract_caches()`` cascade — the quotient tables embed
process-global label ids, so they must never outlive the label intern
table they were compiled against.
"""

from __future__ import annotations

from repro.canon.fingerprint import (CanonicalForm, Signature, canonicalize,
                                     canonically_equal, fingerprint_of,
                                     signature_of, _canonical)
from repro.canon.minimize import QuotientContract, minimize, _quotient
from repro.canon.preorder import (PreorderResult, PreorderWitness,
                                  preorder_equivalent, subcontract_preorder,
                                  _preorder)
from repro.contracts.contract import (register_cache_clearer,
                                      register_cache_stat_names)
from repro.observability.cache_stats import (cache_stats, reset_cache_stats,
                                             track_cache)

__all__ = [
    "CanonicalForm", "PreorderResult", "PreorderWitness",
    "QuotientContract", "Signature", "canon_cache_stats", "canonicalize",
    "canonically_equal", "clear_canon_caches", "fingerprint_of",
    "minimize", "preorder_equivalent", "signature_of",
    "subcontract_preorder",
]

track_cache("canon.quotient", _quotient)
track_cache("canon.fingerprint", _canonical)
track_cache("canon.preorder", _preorder)

#: Cache-stats names owned by the canonicalization layer.
_CACHE_NAMES: tuple[str, ...] = ("canon.quotient", "canon.fingerprint",
                                 "canon.preorder")


def canon_cache_stats() -> dict[str, dict[str, int]]:
    """Hits/misses/size of every canonicalization memo table."""
    return cache_stats(*_CACHE_NAMES)


def clear_canon_caches() -> None:
    """Drop the quotient, canonical-form and preorder memos and
    rebaseline their stats adapters (runs inside the
    ``clear_contract_caches`` cascade)."""
    _quotient.cache_clear()
    _canonical.cache_clear()
    _preorder.cache_clear()
    reset_cache_stats(*_CACHE_NAMES)


register_cache_clearer(clear_canon_caches)
register_cache_stat_names(*_CACHE_NAMES)

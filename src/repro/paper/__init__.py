"""Executable encodings of the paper's figures.

* :mod:`repro.paper.figure2` — the hotel-booking network of Section 2
  (clients, broker, hotels, policies, plans);
* :mod:`repro.paper.figure3` — the scripted 13-step computation fragment.

Figure 1 (the policy automaton) lives in
:func:`repro.policies.library.hotel_policy_automaton`.
"""

from repro.paper import figure2, figure3

__all__ = ["figure2", "figure3"]

"""Replay of the computation fragment in Figure 3 of the paper.

The fragment interleaves the two clients of Figure 2 under the plan
vector ``~π = [π1, π2]`` with ``π1 = {1↦ℓbr, 3↦ℓs3}`` and ``π2`` also
routing through the broker.  The steps, with the histories the paper
shows:

=====  =======================  ==========================================
step   transition               component-1 history afterwards
=====  =======================  ==========================================
1      ``open_{1,φ1}``          ``Lφ1``
2      ``τ`` (Req)              ``Lφ1``
3      ``open_{3,∅}``           ``Lφ1``
4      ``open_{2,φ2}``          (component 2 gains ``Lφ2``)
5–7    ``αsgn(3)·αp(90)·        ``Lφ1·sgn(3)·p(90)·ta(100)``
       αta(100)``
8      ``τ`` (IdC)              unchanged
9      ``τ`` (UnA)              unchanged (S3 becomes ``ε``)
10     ``close_{3,∅}``          unchanged (``Φ(ε) = ε``, no policy)
11     ``τ`` (NoAv)             unchanged
12     ``close_{1,φ1}``         ``Lφ1·sgn(3)·p(90)·ta(100)·Mφ1``
13     ``τ`` (Req, client 2)    —
=====  =======================  ==========================================

:func:`replay` drives the simulator through exactly these steps (failing
loudly if any prescribed transition is unavailable) and returns the
simulator for inspection.
"""

from __future__ import annotations

from repro.core.actions import Event, SessionClose, SessionOpen
from repro.core.plans import Plan, PlanVector
from repro.network.semantics import NetworkTransition
from repro.network.simulator import Simulator
from repro.paper import figure2

#: (description, predicate) for each of the thirteen steps.
SCRIPT = (
    ("open session 1 (C1 with the broker)",
     lambda t: t.rule == "open" and isinstance(t.label, SessionOpen)
     and t.label.request == "1"),
    ("τ: C1 sends Req to the broker",
     lambda t: t.rule == "synch" and t.component == 0
     and t.channel == "Req"),
    ("open session 3 (broker with S3)",
     lambda t: t.rule == "open" and isinstance(t.label, SessionOpen)
     and t.label.request == "3" and t.component == 0),
    ("open session 2 (C2 with the broker)",
     lambda t: t.rule == "open" and isinstance(t.label, SessionOpen)
     and t.label.request == "2"),
    ("S3 signs: αsgn(3)",
     lambda t: t.rule == "access" and isinstance(t.label, Event)
     and t.label.name == "sgn" and t.component == 0),
    ("S3 publishes its price: αp(90)",
     lambda t: t.rule == "access" and isinstance(t.label, Event)
     and t.label.name == "p" and t.component == 0),
    ("S3 publishes its rating: αta(100)",
     lambda t: t.rule == "access" and isinstance(t.label, Event)
     and t.label.name == "ta" and t.component == 0),
    ("τ: the broker forwards the client data (IdC)",
     lambda t: t.rule == "synch" and t.component == 0
     and t.channel == "IdC"),
    ("τ: S3 answers 'no room available' (UnA)",
     lambda t: t.rule == "synch" and t.component == 0
     and t.channel == "UnA"),
    ("close session 3",
     lambda t: t.rule == "close" and isinstance(t.label, SessionClose)
     and t.label.request == "3"),
    ("τ: the broker forwards the non-availability (NoAv)",
     lambda t: t.rule == "synch" and t.component == 0
     and t.channel == "NoAv"),
    ("close session 1 (and the framing of φ1)",
     lambda t: t.rule == "close" and isinstance(t.label, SessionClose)
     and t.label.request == "1"),
    ("τ: the second client's request is accepted",
     lambda t: t.rule == "synch" and t.component == 1
     and t.channel == "Req"),
)


def plan_vector(pi2_hotel: str = "ls4") -> PlanVector:
    """``~π``: π1 routes C1's request 3 to ℓs3; π2 routes C2's to
    *pi2_hotel* (default the valid choice ℓs4 — the figure stops before
    C2's hotel session, so any binding replays the fragment)."""
    pi1 = figure2.plan_pi1()
    pi2 = Plan.of({"2": figure2.LOC_BROKER, "3": pi2_hotel})
    return PlanVector.of(pi1, pi2)


def replay(monitored: bool = True,
           pi2_hotel: str = "ls4") -> tuple[Simulator,
                                            list[NetworkTransition]]:
    """Drive the network through the thirteen steps of Figure 3.

    Returns the simulator (positioned after step 13) and the fired
    transitions.  Raises :class:`repro.core.errors.ReproError` if the
    semantics cannot fire a scripted step — the replay doubles as an
    executable test of the operational rules.
    """
    simulator = Simulator(figure2.initial_configuration(),
                          plan_vector(pi2_hotel),
                          figure2.repository(),
                          monitored=monitored)
    fired = []
    for _description, predicate in SCRIPT:
        fired.append(simulator.fire_matching(predicate))
    return simulator, fired

"""The motivating example of Section 2 (Figure 2 of the paper).

Two clients, a broker and four hotels::

    C1 = open_{1,φ({s1},45,100)}  Req̄.(CoBo.Paȳ + NoAv)  close_{1,…}
    C2 = open_{2,φ({s1,s3},40,70)} Req̄.(CoBo.Paȳ + NoAv) close_{2,…}
    Br = Req. open_{3,∅} IdC̄.(Bok + UnA) close_{3,∅} .(CoBō.Pay ⊕ NoAv̄)
    S1 = αsgn(1)·αp(45)·αta(80) . IdC.(Bok̄ ⊕ UnĀ)
    S2 = αsgn(2)·αp(70)·αta(100). IdC.(Bok̄ ⊕ UnĀ ⊕ Del̄)
    S3 = αsgn(3)·αp(90)·αta(100). IdC.(Bok̄ ⊕ UnĀ)
    S4 = αsgn(4)·αp(50)·αta(90) . IdC.(Bok̄ ⊕ UnĀ)

Hotels are identified by the integers 1–4 (``s1`` of the paper is ``1``).
The section's claims, all reproduced by the test suite and the F2
benchmark:

* S1, S3, S4 are compliant with Br; **S2 is not** — it may send ``Del``,
  which the broker cannot handle;
* S1 and S4 violate C1's policy ``φ({1},45,100)`` (S1 is black-listed;
  S4 respects neither threshold);
* S1 and S3 violate C2's policy ``φ({1,3},40,70)`` (both black-listed);
* the plan ``π1 = {1↦ℓbr, 3↦ℓs3}`` is **valid** for C1;
* for C2, routing request 3 to ℓs2 fails compliance and routing it to
  ℓs3 fails security; routing it to ℓs4 is valid.
"""

from __future__ import annotations

from repro.core.plans import Plan
from repro.core.syntax import (HistoryExpression, event, external, internal,
                               receive, request, send, seq)
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.policies.library import hotel_policy
from repro.policies.usage_automata import Policy

#: Locations, following the paper's naming.
LOC_CLIENT_1 = "lc1"
LOC_CLIENT_2 = "lc2"
LOC_BROKER = "lbr"
LOC_HOTELS = ("ls1", "ls2", "ls3", "ls4")


def policy_c1() -> Policy:
    """``φ1 = φ({s1}, 45, 100)`` — client 1's quality constraints."""
    return hotel_policy({1}, 45, 100)


def policy_c2() -> Policy:
    """``φ2 = φ({s1, s3}, 40, 70)`` — client 2's quality constraints."""
    return hotel_policy({1, 3}, 40, 70)


def client(request_id: str, policy: Policy) -> HistoryExpression:
    """The client shape shared by C1 and C2: send the request, then either
    receive the booking confirmation and pay, or accept unavailability."""
    body = seq(
        send("Req"),
        external(("CoBo", send("Pay")),
                 ("NoAv", seq())))
    return request(request_id, policy, body)


def client_1() -> HistoryExpression:
    """``C1`` of Figure 2."""
    return client("1", policy_c1())


def client_2() -> HistoryExpression:
    """``C2`` of Figure 2."""
    return client("2", policy_c2())


def broker() -> HistoryExpression:
    """``Br``: receive the request, open a session with a hotel (no
    policy), forward the client data, relay the answer."""
    inner = request("3", None,
                    seq(send("IdC"),
                        external(("Bok", seq()), ("UnA", seq()))))
    return seq(
        receive("Req"),
        inner,
        internal(("CoBo", receive("Pay")),
                 ("NoAv", seq())))


def hotel(identifier: int, price: float, rating: float,
          extra_messages: tuple[str, ...] = ()) -> HistoryExpression:
    """A hotel: sign, publish price and rating, then answer the broker.

    *extra_messages* adds internal-choice outputs beyond ``Bok``/``UnA``
    (``S2`` adds ``Del``)."""
    answers = [("Bok", seq()), ("UnA", seq())]
    answers.extend((message, seq()) for message in extra_messages)
    return seq(
        event("sgn", identifier),
        event("p", price),
        event("ta", rating),
        receive("IdC", internal(*answers)))


def hotel_1() -> HistoryExpression:
    """``S1``: black-listed by both clients."""
    return hotel(1, 45, 80)


def hotel_2() -> HistoryExpression:
    """``S2``: the non-compliant hotel (may send ``Del``)."""
    return hotel(2, 70, 100, extra_messages=("Del",))


def hotel_3() -> HistoryExpression:
    """``S3``: compliant; fine for C1, black-listed by C2."""
    return hotel(3, 90, 100)


def hotel_4() -> HistoryExpression:
    """``S4``: compliant; fails C1's thresholds, fine for C2."""
    return hotel(4, 50, 90)


def repository() -> Repository:
    """The repository ``R`` with the broker and the four hotels."""
    return Repository({
        LOC_BROKER: broker(),
        "ls1": hotel_1(),
        "ls2": hotel_2(),
        "ls3": hotel_3(),
        "ls4": hotel_4(),
    })


def plan_pi1() -> Plan:
    """``π1 = {1 ↦ ℓbr, 3 ↦ ℓs3}`` — the valid plan for C1."""
    return Plan.of({"1": LOC_BROKER, "3": "ls3"})


def plan_pi2_bad_compliance() -> Plan:
    """The plan mapping C2's session to the broker and request 3 to
    ``ℓs2`` — invalid because S2 is not compliant with Br."""
    return Plan.of({"2": LOC_BROKER, "3": "ls2"})


def plan_pi2_bad_security() -> Plan:
    """The plan mapping request 3 to ``ℓs3`` for C2 — compliant, but S3
    is black-listed by C2, so a policy violation occurs."""
    return Plan.of({"2": LOC_BROKER, "3": "ls3"})


def plan_pi2_valid() -> Plan:
    """The valid plan for C2: route request 3 to ``ℓs4``."""
    return Plan.of({"2": LOC_BROKER, "3": "ls4"})


def initial_configuration() -> Configuration:
    """The starting configuration of Figure 3:
    ``ε, ℓc1:C1 ∥ ε, ℓc2:C2``."""
    return Configuration.of(
        Component.client(LOC_CLIENT_1, client_1()),
        Component.client(LOC_CLIENT_2, client_2()))

"""Compiled static-validity certification over interned products.

The interpreted certifier (:mod:`repro.staticcheck.validity`) explores
pairs ``⟨residual term, abstract monitor state⟩``, re-stepping the term
and re-advancing the whole monitor tuple on every edge.  Here both sides
are interned:

* the residual transition system is compiled once per term into flat
  per-state move tables ``(label, is_history, target_id)``;
* monitor states are interned into dense ids and monitor *advancement*
  is memoised per ``(monitor_id, label)`` — each distinct abstract
  step through :func:`~repro.analysis.security.advance_monitor` runs
  once, every revisit is a dict hit.

The BFS itself runs over encoded int pairs with a predecessor map
instead of per-frontier-entry label paths, in exactly the interpreted
engine's visit order, so the certificate — verdict, explored count, and
the shortest :class:`~repro.staticcheck.witness.ValidityWitness` on
failure — is byte-identical.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache

from repro.compiled.intern import Interner
from repro.core.actions import is_history_label
from repro.core.errors import StateSpaceLimitError
from repro.core.semantics import step
from repro.core.syntax import HistoryExpression, policies_of
from repro.contracts.lts import build_lts
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import track_cache
from repro.analysis.security import advance_monitor, fresh_monitor_state

#: Entries kept in the compiled term-LTS memo.
TERM_CACHE_SIZE = 1024


@lru_cache(maxsize=TERM_CACHE_SIZE)
def _compile_term(term: HistoryExpression):
    """The residual transition table of *term*: per-state tuples of
    ``(label, is_history, target_id)`` in :func:`step` order, states
    interned in construction order (0 = *term* itself).

    The policy set rides along in the memo entry: ``policies_of`` is a
    full recursion over the (shared-subterm) syntax DAG, easily more
    expensive than the whole compiled BFS, so a warm certification call
    must not pay it again."""
    policies = policies_of(term)
    tel = _telemetry.active()
    if not policies:
        if tel is not None:
            tel.emit("compile.term", states=0, policies=0)
        return (), (), policies
    lts = build_lts(term, step)
    states = Interner()
    for state in lts.transitions:
        states.intern(state)
    state_ids = states.ids
    moves = tuple(
        tuple((label, is_history_label(label), state_ids[target])
              for label, target in lts.transitions[state])
        for state in states.values)
    if tel is not None:
        tel.emit("compile.term", states=len(moves),
                 policies=len(policies))
    return states.values, moves, policies


track_cache("compiled.validity_terms", _compile_term)

# Join the compiled layer's stats/clear cascade (tables clears this
# memo; the shared name lists make its stats visible alongside, both in
# compiled_cache_stats() and in contract_cache_stats()).
from repro.compiled import tables as _tables  # noqa: E402
from repro.contracts.contract import register_cache_stat_names  # noqa: E402

if "compiled.validity_terms" not in _tables._CACHE_NAMES:
    _tables._CACHE_NAMES.append("compiled.validity_terms")
register_cache_stat_names("compiled.validity_terms")


def compiled_certify_validity(term: HistoryExpression, max_states: int):
    """The compiled twin of the interpreted ``_certify`` BFS.

    Returns a :class:`~repro.staticcheck.validity.ValidityCertificate`;
    imported lazily to keep the layering acyclic (staticcheck dispatches
    here, not the other way around).  One flight-recorder event marks
    each completed certification.
    """
    certificate = _certify_compiled(term, max_states)
    tel = _telemetry.active()
    if tel is not None:
        tel.emit("certify.compiled", valid=certificate.valid,
                 explored=certificate.explored)
    return certificate


def _certify_compiled(term: HistoryExpression, max_states: int):
    from repro.staticcheck.validity import ValidityCertificate
    from repro.staticcheck.witness import ValidityWitness, automaton_states

    _, moves, policies = _compile_term(term)
    if not policies:
        return ValidityCertificate(True, None, 0)
    n_terms = len(moves)
    monitors = Interner()
    initial_monitor = monitors.intern(fresh_monitor_state(policies))
    # (monitor_id, label) → (next_monitor_id, violated-policy-or-None).
    # Advancement depends on nothing else, so each distinct abstract
    # monitor step runs the concrete runners exactly once.
    advance_memo: dict[tuple[int, object], tuple[int, object]] = {}

    def advance(monitor_id: int, label) -> tuple[int, object]:
        key = (monitor_id, label)
        cached = advance_memo.get(key)
        if cached is None:
            next_monitor, violated = advance_monitor(
                monitors.values[monitor_id], (label,))
            cached = (monitors.intern(next_monitor), violated)
            advance_memo[key] = cached
        return cached

    def decode_path(code: int) -> tuple:
        """The appended history labels along the discovery chain of
        *code* — re-derived from the predecessor map by matching each
        hop against its parent's move table in step order, which is the
        order the interpreted engine accumulated its frontier paths."""
        chain = [code]
        node = code
        while node != initial:
            node = parents[node]
            chain.append(node)
        chain.reverse()
        labels: list = []
        for parent, child in zip(chain, chain[1:]):
            parent_monitor, parent_term = divmod(parent, n_terms)
            child_monitor, child_term = divmod(child, n_terms)
            for label, is_history, target_id in moves[parent_term]:
                if target_id != child_term:
                    continue
                if not is_history:
                    if child_monitor == parent_monitor:
                        break
                    continue
                next_monitor_id, violated = advance(parent_monitor, label)
                if violated is None and next_monitor_id == child_monitor:
                    labels.append(label)
                    break
            else:  # pragma: no cover - parents always record a real edge
                raise AssertionError("broken predecessor chain")
        return tuple(labels)

    initial = initial_monitor * n_terms + 0
    seen = {initial}
    parents: dict[int, int] = {}
    frontier: deque[int] = deque((initial,))
    explored = 0
    while frontier:
        code = frontier.popleft()
        explored += 1
        monitor_id, term_id = divmod(code, n_terms)
        for label, is_history, target_id in moves[term_id]:
            if is_history:
                next_monitor_id, violated = advance(monitor_id, label)
                if violated is not None:
                    path = decode_path(code) + (label,)
                    witness = ValidityWitness(
                        labels=path, policy=violated,
                        states=automaton_states(path, violated))
                    return ValidityCertificate(False, witness, explored)
            else:
                next_monitor_id = monitor_id
            successor = next_monitor_id * n_terms + target_id
            if successor not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "validity product")
                seen.add(successor)
                parents[successor] = code
                frontier.append(successor)
    return ValidityCertificate(True, None, explored)

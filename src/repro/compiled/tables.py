"""Lowering a contract LTS into dense integer transition tables.

One :class:`CompiledContract` per (projected) term, memoised: states and
labels are interned into small ints, each state's communication moves
become tuples of ints, and the Definition-5 stuck-check ingredients are
precompiled as *channel bitmasks* — ``out_mask`` has bit ``c`` set iff
an output on channel ``c`` is enabled, ``in_mask`` iff an input is.
Because an output on channel ``c`` is matched exactly by an input on
``c``, the ready-set inclusion test of Definition 5

    every enabled output of one side is matched by the other

compiles to ``out1 & ~in2 == 0 and out2 & ~in1 == 0`` on ints, and the
deadlock test (i) to ``out1 | out2 != 0``.

Labels and channels are interned in one process-wide table
(:data:`LABELS`), so two contracts compiled independently agree on every
label id and the product search never touches a label object.  The
table also precomputes the co-action id per label (``co(ā) = a``), which
is how synchronisation pairing becomes an int-keyed dict lookup.

Move orders are preserved exactly as the interpreted engines enumerate
them — ``labels_from``/``successors`` frozenset iteration order — so the
compiled BFS discovers states in the same order and reconstructs
byte-identical witnesses.  A second, repr-sorted successor view
(:attr:`CompiledContract.sorted_repr`) serves the gfp certifier, which
canonicalises move order by term rendering.

Everything is memoised per term and registered with the
``clear_contract_caches`` cascade; compilation emits ``compile.*``
telemetry (states/labels interned, table bytes, compile seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.compiled.intern import Interner
from repro.core.actions import Receive, Send, is_input, is_output
from repro.core.semantics import is_terminated
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import (Contract, register_cache_clearer,
                                      register_cache_stat_names)
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import (cache_stats, reset_cache_stats,
                                             track_cache)

#: Entries kept in the compiled-table memo (same trade-off as the
#: contract/LTS caches it sits beside).
COMPILED_CACHE_SIZE = 1024


class LabelTable:
    """Process-wide intern table for communication labels and channels.

    ``co_id[label_id]`` is the id of the co-action (``-1`` for labels
    without one); ``channel_mask[label_id]`` the single-bit mask of the
    label's channel (``0`` for non-communications); ``is_out[label_id]``
    whether the label is an output.
    """

    __slots__ = ("labels", "channels", "co_id", "channel_mask", "is_out")

    def __init__(self) -> None:
        self.labels = Interner()
        self.channels = Interner()
        self.co_id: list[int] = []
        self.channel_mask: list[int] = []
        self.is_out: list[bool] = []

    def intern(self, label) -> int:
        """The id of *label*, extending the side tables when new."""
        found = self.labels.get(label)
        if found is not None:
            return found
        index = self.labels.intern(label)
        if isinstance(label, Send):
            partner: object = Receive(label.channel)
            mask = 1 << self.channels.intern(label.channel)
            out = True
        elif isinstance(label, Receive):
            partner = Send(label.channel)
            mask = 1 << self.channels.intern(label.channel)
            out = False
        else:
            partner = None
            mask = 0
            out = False
        self.co_id.append(-1)
        self.channel_mask.append(mask)
        self.is_out.append(out)
        if partner is not None:
            # Interning the partner may extend the tables recursively;
            # patch both directions afterwards.
            partner_id = self.intern(partner)
            self.co_id[index] = partner_id
            self.co_id[partner_id] = index
        return index

    def clear(self) -> None:
        self.__init__()


#: The process-wide label/channel intern table.  Cleared together with
#: the compiled-contract memo (the cached tables reference its ids).
LABELS = LabelTable()


@dataclass(frozen=True)
class CompiledContract:
    """Flat integer tables for one contract's transition system.

    ``terms[i]`` recovers the history expression of state ``i`` (state 0
    is the initial one, remaining states in LTS construction order).
    ``moves[i]`` lists the communication moves of state ``i`` as
    ``(co_label_id, targets)`` in the exact order the interpreted
    product enumerates them; ``by_label[i]`` indexes the same targets by
    the state's *own* label id (the receiving side of a
    synchronisation).  ``out_mask``/``in_mask`` are the channel bitmask
    ready sets, ``terminated`` the ``ε`` flags.
    """

    term: HistoryExpression
    terms: tuple[HistoryExpression, ...]
    state_id: dict[HistoryExpression, int]
    moves: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]
    by_label: tuple[dict[int, tuple[int, ...]], ...]
    out_mask: tuple[int, ...]
    in_mask: tuple[int, ...]
    terminated: tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def n_states(self) -> int:
        return len(self.terms)

    def table_bytes(self) -> int:
        """Rough size of the integer tables (interned objects excluded)
        — the footprint the ``compile.table_bytes`` counter reports."""
        words = len(self.out_mask) + len(self.in_mask) + len(self.terminated)
        for state_moves in self.moves:
            for _, targets in state_moves:
                words += 2 + len(targets)
        for index in self.by_label:
            words += 2 * len(index)
        return words * 8


def compile_contract(contract: Contract | HistoryExpression
                     ) -> CompiledContract:
    """The memoised compiled tables of *contract* (terms accepted too).

    Telemetry (when active) records per actual compilation — memo hits
    are free — the states and labels interned, the flat-table bytes and
    the compile wall time under ``compile.*``.
    """
    term = contract.term if isinstance(contract, Contract) else \
        Contract(contract).term
    return _compile(term)


@lru_cache(maxsize=COMPILED_CACHE_SIZE)
def _compile(term: HistoryExpression) -> CompiledContract:
    tel = _telemetry.active()
    if tel is None:
        return _compile_tables(term)
    with tel.tracer.span("compile.contract") as span:
        started = time.perf_counter()
        labels_before = len(LABELS.labels)
        compiled = _compile_tables(term)
        new_labels = len(LABELS.labels) - labels_before
        table_bytes = compiled.table_bytes()
        metrics = tel.metrics
        metrics.counter("compile.contracts").inc()
        metrics.counter("compile.states_interned").inc(len(compiled))
        metrics.counter("compile.labels_interned").inc(new_labels)
        metrics.counter("compile.table_bytes").inc(table_bytes)
        metrics.histogram("compile.seconds").observe(
            time.perf_counter() - started)
        span.set(states=len(compiled), table_bytes=table_bytes)
        tel.emit("compile.contract", states=len(compiled),
                 labels=new_labels, table_bytes=table_bytes)
    return compiled


def _compile_tables(term: HistoryExpression) -> CompiledContract:
    lts = Contract(term, already_projected=True).lts
    states = Interner()
    # Intern in LTS construction order (BFS from the initial term), so
    # state 0 is initial and ids are stable per term.
    for state in lts.transitions:
        states.intern(state)

    intern_label = LABELS.intern
    co_id = LABELS.co_id
    channel_mask = LABELS.channel_mask
    moves: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
    by_label: list[dict[int, tuple[int, ...]]] = []
    out_masks: list[int] = []
    in_masks: list[int] = []
    terminated: list[bool] = []
    for state in states.values:
        out_mask = 0
        in_mask = 0
        state_moves: list[tuple[int, tuple[int, ...]]] = []
        label_index: dict[int, tuple[int, ...]] = {}
        # labels_from / successors iteration order is exactly what the
        # interpreted synchronisations() enumerates — keep it.
        for label in lts.labels_from(state):
            output = is_output(label)
            if not (output or is_input(label)):
                continue
            label_id = intern_label(label)
            targets = tuple(states.ids[target]
                            for target in lts.successors(state, label))
            state_moves.append((co_id[label_id], targets))
            label_index[label_id] = targets
            if output:
                out_mask |= channel_mask[label_id]
            else:
                in_mask |= channel_mask[label_id]
        moves.append(tuple(state_moves))
        by_label.append(label_index)
        out_masks.append(out_mask)
        in_masks.append(in_mask)
        terminated.append(is_terminated(state))

    return CompiledContract(
        term=term, terms=tuple(states.values), state_id=states.ids,
        moves=tuple(moves), by_label=tuple(by_label),
        out_mask=tuple(out_masks), in_mask=tuple(in_masks),
        terminated=tuple(terminated))


@lru_cache(maxsize=COMPILED_CACHE_SIZE)
def _sorted_repr_of(term: HistoryExpression) -> tuple[str, ...]:
    """``repr`` of every interned state, indexed by state id — the
    sort key material for the gfp certifier's canonical move order."""
    return tuple(repr(state) for state in _compile(term).terms)


track_cache("compiled.contract", _compile)
track_cache("compiled.reprs", _sorted_repr_of)

#: Cache-stats names owned by the compiled layer (the validity module
#: appends its own at import time).
_CACHE_NAMES: list[str] = ["compiled.contract", "compiled.reprs"]


def compiled_cache_stats() -> dict[str, dict[str, int]]:
    """Hits/misses/size of every compiled-core memo table."""
    return cache_stats(*_CACHE_NAMES)


def label_table_stats() -> dict[str, int]:
    """Size of the process-wide label intern table plus the number of
    currently memoised compiled contracts (what the CLI prints under
    ``--stats``)."""
    return {"labels": len(LABELS.labels),
            "channels": len(LABELS.channels),
            "compiled_contracts": _compile.cache_info().currsize}


def clear_compiled_caches() -> None:
    """Drop the compiled tables *and* the label intern table (the tables
    store its ids), rebaselining the stats adapters."""
    from repro.compiled import validity as _validity
    _compile.cache_clear()
    _sorted_repr_of.cache_clear()
    _validity._compile_term.cache_clear()
    LABELS.clear()
    reset_cache_stats(*_CACHE_NAMES)


register_cache_clearer(clear_compiled_caches)
register_cache_stat_names(*_CACHE_NAMES)

"""The compiled twin of the reversible-compliance decider.

Same doom least fixpoint as :func:`repro.core.reversible.check_reversible`
— run over the interned integer tables of :mod:`repro.compiled.tables`
instead of term-level LTSs.  Pair states are encoded ``i * n_server + j``;
the per-pair move groups pair the client's own label id with the server
targets of its co-label (one int-keyed dict lookup).  Canonical order is
reproduced from the repr side-tables (:func:`_sorted_repr_of`), so the
verdict, ranks, adversary strategy and demonic play decode to exactly
what the interpreted engine produces — the differential suite asserts
object equality of the whole result.
"""

from __future__ import annotations

from functools import lru_cache

from repro.compiled.tables import (COMPILED_CACHE_SIZE, LABELS,
                                   CompiledContract, _sorted_repr_of,
                                   compile_contract)
from repro.contracts.contract import (Contract, register_cache_clearer,
                                      register_cache_stat_names)
from repro.core.errors import StateSpaceLimitError
from repro.core.reversible import (ReversibleResult, _build_witness,
                                   _demonic_play)
from repro.core.syntax import HistoryExpression
from repro.observability.cache_stats import (cache_stats, reset_cache_stats,
                                             track_cache)


def compiled_check_reversible(client_term: HistoryExpression,
                              server_term: HistoryExpression,
                              max_states: int) -> ReversibleResult:
    """Decide reversible compliance over compiled tables (memoised)."""
    return _compiled_decide(client_term, server_term, max_states)


@lru_cache(maxsize=COMPILED_CACHE_SIZE)
def _compiled_decide(client_term: HistoryExpression,
                     server_term: HistoryExpression,
                     max_states: int) -> ReversibleResult:
    client = compile_contract(Contract(client_term, already_projected=True))
    server = compile_contract(Contract(server_term, already_projected=True))
    n_server = server.n_states
    client_reprs = _sorted_repr_of(client_term)
    server_reprs = _sorted_repr_of(server_term)
    label_values = LABELS.labels.values

    def pair_repr(code: int) -> str:
        # repr of the decoded tuple, without decoding:
        # repr((c, s)) == "(" + repr(c) + ", " + repr(s) + ")".
        return (f"({client_reprs[code // n_server]}, "
                f"{server_reprs[code % n_server]})")

    def moves_of(code: int) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """``(own_label_id, successor codes)`` groups in canonical
        (label-repr, then pair-repr) order — the int image of
        :func:`repro.core.reversible.sync_moves`."""
        i, j = divmod(code, n_server)
        server_index = server.by_label[j]
        groups: list[tuple[int, tuple[int, ...]]] = []
        for label_id, client_targets in client.by_label[i].items():
            server_targets = server_index.get(LABELS.co_id[label_id])
            if not server_targets:
                continue
            successors = tuple(sorted(
                (ci * n_server + sj
                 for ci in client_targets for sj in server_targets),
                key=pair_repr))
            groups.append((label_id, successors))
        groups.sort(key=lambda group: repr(label_values[group[0]]))
        return tuple(groups)

    # 1. Synchronisation-reachable closure over encoded pairs.
    initial = 0 * n_server + 0
    moves: dict[int, tuple[tuple[int, tuple[int, ...]], ...]] = {}
    order: list[int] = [initial]
    seen: set[int] = {initial}
    cursor = 0
    while cursor < len(order):
        code = order[cursor]
        cursor += 1
        pair_moves = moves_of(code)
        moves[code] = pair_moves
        for _, successors in pair_moves:
            for successor in successors:
                if successor in seen:
                    continue
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "reversible pair graph")
                seen.add(successor)
                order.append(successor)

    # 2. The round-synchronised doom lfp (see the interpreted engine for
    #    why commits happen only between rounds).
    client_terminated = client.terminated
    doomed: dict[int, int] = {}
    strategy: dict[int, dict[int, int]] = {}
    rank = 0
    while True:
        newly: list[tuple[int, dict[int, int]]] = []
        for code in order:
            if code in doomed or client_terminated[code // n_server]:
                continue
            answers: dict[int, int] = {}
            refuted = True
            for label_id, successors in moves[code]:
                picked = next((successor for successor in successors
                               if successor in doomed), None)
                if picked is None:
                    refuted = False
                    break
                answers[label_id] = picked
            if refuted:
                newly.append((code, answers))
        if not newly:
            break
        for code, answers in newly:
            doomed[code] = rank
            strategy[code] = answers
        rank += 1

    explored = len(order)
    if initial not in doomed:
        return ReversibleResult(True, explored)

    # 3. Decode the proof back to terms and labels; the witness/play
    #    builders are shared with the interpreted engine.
    def decode(code: int):
        return (client.terms[code // n_server],
                server.terms[code % n_server])

    decoded_doomed = {decode(code): stage for code, stage in doomed.items()}
    decoded_strategy = {
        decode(code): {label_values[label_id]: decode(successor)
                       for label_id, successor in answers.items()}
        for code, answers in strategy.items()}
    decoded_initial = decode(initial)
    return ReversibleResult(
        False, explored,
        witness=_build_witness(client_term, server_term, decoded_initial,
                               decoded_doomed, decoded_strategy),
        trace=_demonic_play(decoded_initial, decoded_doomed,
                            decoded_strategy))


track_cache("reversible.compiled", _compiled_decide)

_CACHE_NAMES = ["reversible.compiled"]


def compiled_reversible_cache_stats() -> dict[str, dict[str, int]]:
    """Hits/misses/size of the compiled reversible-decider memo."""
    return cache_stats(*_CACHE_NAMES)


def clear_compiled_reversible_caches() -> None:
    _compiled_decide.cache_clear()
    reset_cache_stats(*_CACHE_NAMES)


register_cache_clearer(clear_compiled_reversible_caches)
register_cache_stat_names(*_CACHE_NAMES)

"""Compiled verification core: interned states, flat transition tables.

The interpreted deciders (:mod:`repro.core.compliance`,
:mod:`repro.contracts.product`, :mod:`repro.staticcheck`) walk
dict-of-terms transition systems, hashing whole history expressions on
every set operation.  This package lowers a contract's finite LTS *once*
into dense integer-indexed structures —

* an intern table mapping states and action labels to small ints
  (:mod:`~repro.compiled.intern`);
* per-state transition arrays and ready sets precompiled as channel
  bitmasks, so the Definition-5 stuck check is a handful of ``&``/``|``
  operations on ints (:mod:`~repro.compiled.tables`);
* a frontier BFS over the implicit product with bitset-encoded visited
  sets and predecessor arrays for shortest-witness reconstruction
  (:mod:`~repro.compiled.search`);
* a compiled ⟨residual, monitor⟩ validity product with interned monitor
  states and memoised monitor advancement
  (:mod:`~repro.compiled.validity`).

All three deciders plug into the same core via ``engine="compiled"``:
:func:`repro.core.compliance.check_compliance`,
:func:`repro.contracts.product.search_product`, and the staticcheck
certifiers (:func:`repro.staticcheck.certify_compliance`,
:func:`repro.staticcheck.certify_validity`).  The compiled engines visit
states in exactly the order their interpreted counterparts do, so
verdicts, explored-state counts and reconstructed witnesses are
byte-identical — the differential property suite asserts it.

Compilation results are memoised per (projected) term and wired into the
``clear_contract_caches`` cascade; telemetry records ``compile.*``
counters (states/labels interned, table bytes, compile seconds) through
the observability layer.
"""

from __future__ import annotations

from repro.compiled.intern import Bitset, Interner
from repro.compiled.tables import (CompiledContract, compile_contract,
                                   compiled_cache_stats,
                                   clear_compiled_caches)
from repro.compiled.search import (CompiledSearch, compiled_relation,
                                   compiled_search)
from repro.compiled.validity import compiled_certify_validity

__all__ = [
    "Bitset",
    "CompiledContract",
    "CompiledSearch",
    "Interner",
    "clear_compiled_caches",
    "compile_contract",
    "compiled_cache_stats",
    "compiled_certify_validity",
    "compiled_relation",
    "compiled_search",
]

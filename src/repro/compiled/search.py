"""Frontier BFS product-emptiness search over compiled tables.

States of the implicit product ``H1 ⊗ H2`` are encoded as single ints
``i * n_server + j``; the visited set is a dense bitset (sparse fallback
for oversized pair spaces), the frontier a deque of ints, and the stuck
check of Definition 5 four int operations on precompiled channel
bitmasks.  Witnesses come back as predecessor chains over encoded pairs,
decoded into term pairs only once, at the very end.

Two search modes mirror the two interpreted front-ends exactly:

* :func:`compiled_search` — the on-the-fly emptiness BFS of
  :func:`repro.contracts.product.search_product`: stuck states are
  detected at *discovery*, the search stops at the first one, and
  successors are enumerated in the interpreted engine's own order, so
  the reconstructed shortest trace is byte-identical;
* :func:`compiled_relation` — the full candidate-relation exploration
  of :func:`repro.staticcheck.compliance.certify_compliance`: refusing
  pairs are absorbing, detected when *popped*, move order is
  canonicalised by term rendering, and the whole relation is explored
  (the certificate's ``pairs`` count is its size).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.compiled.intern import make_visited
from repro.compiled.tables import CompiledContract
from repro.core.errors import StateSpaceLimitError
from repro.core.syntax import HistoryExpression
from repro.observability import runtime as _telemetry

#: A decoded product state (the interpreted engines' PairState).
_Pair = tuple[HistoryExpression, HistoryExpression]


@dataclass(frozen=True)
class CompiledSearch:
    """Outcome of :func:`compiled_search`, isomorphic to
    :class:`repro.contracts.product.ProductSearch`."""

    empty: bool
    trace: tuple[_Pair, ...] | None
    explored: int


def _decode_trace(stuck: int, parents: dict[int, int], initial: int,
                  client: CompiledContract, server: CompiledContract
                  ) -> tuple[_Pair, ...]:
    """The predecessor chain from *initial* to *stuck*, decoded."""
    n_server = len(server.terms)
    encoded = [stuck]
    node = stuck
    while node != initial:
        node = parents[node]
        encoded.append(node)
    encoded.reverse()
    client_terms = client.terms
    server_terms = server.terms
    return tuple((client_terms[code // n_server],
                  server_terms[code % n_server]) for code in encoded)


def compiled_search(client: CompiledContract, server: CompiledContract,
                    max_states: int) -> CompiledSearch:
    """Decide ``L(client ⊗ server) = ∅`` over the compiled tables.

    Mirrors the interpreted on-the-fly BFS state for state: same
    discovery order, same early exit, same explored-state count, same
    shortest counterexample.  One flight-recorder event per search is
    emitted at the boundary; the BFS loop itself stays telemetry-free.
    """
    result = _compiled_search(client, server, max_states)
    tel = _telemetry.active()
    if tel is not None:
        tel.emit("search.compiled", empty=result.empty,
                 explored=result.explored)
    return result


def _compiled_search(client: CompiledContract, server: CompiledContract,
                     max_states: int) -> CompiledSearch:
    ns = len(server.terms)
    c_moves = client.moves
    s_by_label = server.by_label
    c_out = client.out_mask
    c_in = client.in_mask
    c_term = client.terminated
    s_out = server.out_mask
    s_in = server.in_mask

    initial = 0  # both state 0s: pair 0 * ns + 0
    # Definition 5 on the initial pair, before any search.
    if not c_term[0]:
        out1 = c_out[0]
        out2 = s_out[0]
        if not (out1 | out2) or (out1 & ~s_in[0]) or (out2 & ~c_in[0]):
            return CompiledSearch(
                False, ((client.terms[0], server.terms[0]),), 1)

    visited = make_visited(len(client.terms) * ns)
    visited.add(initial)
    seen = 1
    parents: dict[int, int] = {}
    frontier: deque[int] = deque((initial,))
    pop = frontier.popleft
    push = frontier.append
    test_and_set = visited.test_and_set
    while frontier:
        code = pop()
        i = code // ns
        j = code - i * ns
        server_index = s_by_label[j]
        for co_label, client_targets in c_moves[i]:
            server_targets = server_index.get(co_label)
            if server_targets is None:
                continue
            for ci in client_targets:
                base = ci * ns
                ci_term = c_term[ci]
                ci_out = c_out[ci]
                ci_in = c_in[ci]
                for sj in server_targets:
                    successor = base + sj
                    if test_and_set(successor):
                        continue
                    if seen >= max_states:
                        raise StateSpaceLimitError(max_states)
                    seen += 1
                    parents[successor] = code
                    if not ci_term:
                        out2 = s_out[sj]
                        some = ci_out | out2
                        if (not some or (ci_out & ~s_in[sj])
                                or (out2 & ~ci_in)):
                            return CompiledSearch(
                                False,
                                _decode_trace(successor, parents, initial,
                                              client, server),
                                seen)
                    push(successor)
    return CompiledSearch(True, None, seen)


@dataclass(frozen=True)
class CompiledRelation:
    """Outcome of :func:`compiled_relation`: the candidate relation of
    Definition 4 with refusing pairs absorbing.

    ``pairs`` is the relation's size; ``trace`` the BFS-shortest path to
    the first refusing pair popped in canonical order (``None`` when the
    relation is refusal-free, i.e. the contracts are compliant).
    """

    pairs: int
    trace: tuple[_Pair, ...] | None

    @property
    def compliant(self) -> bool:
        return self.trace is None


def compiled_relation(client: CompiledContract, server: CompiledContract,
                      max_states: int) -> CompiledRelation:
    """Explore the full synchronisation-reachable pair relation.

    Mirrors the interpreted gfp certifier: pairs are checked for refusal
    when popped (FIFO order — the first refusing pair is the nearest
    one), refusing pairs are absorbing, and the successors of a live
    pair are deduplicated and visited in term-rendering order, so the
    reconstructed witness trace is byte-identical to the interpreted
    certifier's.  As with :func:`compiled_search`, one flight-recorder
    event marks the completed exploration.
    """
    result = _compiled_relation(client, server, max_states)
    tel = _telemetry.active()
    if tel is not None:
        tel.emit("search.compiled_relation", compliant=result.compliant,
                 pairs=result.pairs)
    return result


def _compiled_relation(client: CompiledContract, server: CompiledContract,
                       max_states: int) -> CompiledRelation:
    ns = len(server.terms)
    c_moves = client.moves
    s_by_label = server.by_label
    c_out = client.out_mask
    c_in = client.in_mask
    c_term = client.terminated
    s_out = server.out_mask
    s_in = server.in_mask
    # Lazy repr tables: only materialised when a pair has >1 successor
    # to order (the common case for compliant products is tiny fan-out).
    from repro.compiled.tables import _sorted_repr_of
    c_reprs = _sorted_repr_of(client.term)
    s_reprs = _sorted_repr_of(server.term)

    initial = 0
    visited = make_visited(len(client.terms) * ns)
    visited.add(initial)
    seen = 1
    pairs = 0
    parents: dict[int, int] = {}
    first_refusing = -1
    frontier: deque[int] = deque((initial,))
    while frontier:
        code = frontier.popleft()
        pairs += 1
        i = code // ns
        j = code - i * ns
        # Refusal on pop (Definition 4's ready-set condition, compiled
        # to the equivalent Definition 5 mask test).
        if not c_term[i]:
            out1 = c_out[i]
            out2 = s_out[j]
            if not (out1 | out2) or (out1 & ~s_in[j]) or (out2 & ~c_in[i]):
                if first_refusing < 0:
                    first_refusing = code
                continue  # absorbing: no successors
        successors: set[int] = set()
        server_index = s_by_label[j]
        for co_label, client_targets in c_moves[i]:
            server_targets = server_index.get(co_label)
            if server_targets is None:
                continue
            for ci in client_targets:
                base = ci * ns
                for sj in server_targets:
                    successors.add(base + sj)
        for successor in sorted(
                successors,
                key=lambda pair: f"({c_reprs[pair // ns]}, "
                                 f"{s_reprs[pair % ns]})"):
            if visited.test_and_set(successor):
                continue
            if seen >= max_states:
                raise StateSpaceLimitError(max_states,
                                           "ready-set product")
            seen += 1
            parents[successor] = code
            frontier.append(successor)

    if first_refusing < 0:
        return CompiledRelation(pairs, None)
    return CompiledRelation(
        pairs, _decode_trace(first_refusing, parents, initial,
                             client, server))

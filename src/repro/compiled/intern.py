"""Interning and bitset primitives for the compiled core.

An :class:`Interner` assigns dense small-int ids to hashable objects in
first-seen order, so downstream tables can be flat lists indexed by id
instead of dicts keyed by structured terms.

A :class:`Bitset` is a fixed-capacity membership set over ``[0, size)``
encoded as machine words (a ``bytearray`` of bit chunks): testing and
setting a bit touches one byte, never rehashes, and the whole visited
set of a product search lives in ``size / 8`` bytes of contiguous
memory.  Beyond :data:`DENSE_BITSET_LIMIT` candidate states the dense
encoding would allocate more memory than a sparse search could ever
touch (the searches are bounded by ``max_states`` visited states), so
:func:`make_visited` falls back to a sparse int-set with the same
``test_and_set`` protocol.
"""

from __future__ import annotations

from typing import Hashable

#: Largest dense pair space (in bits) a :class:`Bitset` is allocated
#: for — 1 << 25 bits is a 4 MiB bytearray.  Larger spaces use the
#: sparse fallback.
DENSE_BITSET_LIMIT = 1 << 25


class Interner:
    """Dense ids for hashable objects, in first-intern order.

    ``intern`` returns a stable id per distinct object; ``values[id]``
    maps back.  Lookup of an already-interned object never allocates.
    """

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: dict[Hashable, int] = {}
        self.values: list = []

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self.ids

    def intern(self, obj: Hashable) -> int:
        """The id of *obj*, assigning the next dense id when new."""
        found = self.ids.get(obj)
        if found is not None:
            return found
        index = len(self.values)
        self.ids[obj] = index
        self.values.append(obj)
        return index

    def get(self, obj: Hashable) -> int | None:
        """The id of *obj*, or ``None`` when never interned."""
        return self.ids.get(obj)


class Bitset:
    """Dense membership set over ``[0, size)``: one bit per element."""

    __slots__ = ("_bits", "size")

    def __init__(self, size: int) -> None:
        self.size = size
        self._bits = bytearray((size + 7) >> 3)

    def __contains__(self, index: int) -> bool:
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    def add(self, index: int) -> None:
        self._bits[index >> 3] |= 1 << (index & 7)

    def test_and_set(self, index: int) -> bool:
        """True iff *index* was already present; sets it either way."""
        byte = self._bits[index >> 3]
        mask = 1 << (index & 7)
        if byte & mask:
            return True
        self._bits[index >> 3] = byte | mask
        return False

    def nbytes(self) -> int:
        return len(self._bits)


class SparseBits:
    """Sparse fallback with the :class:`Bitset` protocol, for product
    spaces too large to allocate densely."""

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: set[int] = set()

    def __contains__(self, index: int) -> bool:
        return index in self._seen

    def add(self, index: int) -> None:
        self._seen.add(index)

    def test_and_set(self, index: int) -> bool:
        if index in self._seen:
            return True
        self._seen.add(index)
        return False

    def nbytes(self) -> int:
        return len(self._seen) * 8


def make_visited(size: int):
    """A visited-set for a product space of *size* encodable states:
    dense :class:`Bitset` when affordable, sparse otherwise."""
    if 0 <= size <= DENSE_BITSET_LIMIT:
        return Bitset(size)
    return SparseBits()

"""Basic Process Algebra (BPA) processes.

Section 3.1: "the history expression Ĥ is naturally rendered as a BPA
process, while finite state automata check its validity against the
policies to be enforced".  This module provides the BPA term language

    p ::= 0 | a | p·p | p + p | X          (X ≜ p in a definition set Δ)

with its standard operational semantics.  Atomic actions ``a`` are the
labels of the calculus (events, framings, communications).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.errors import WellFormednessError
from repro.contracts.lts import LTS, build_lts


class BPAProcess:
    """Abstract base class of BPA terms."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - simple rendering
        return _render(self)


@dataclass(frozen=True, slots=True)
class BPAZero(BPAProcess):
    """The terminated process ``0``."""


#: Shared ``0`` instance.
ZERO = BPAZero()


@dataclass(frozen=True, slots=True)
class BPAAction(BPAProcess):
    """An atomic action ``a``."""

    label: object


@dataclass(frozen=True, slots=True)
class BPASeq(BPAProcess):
    """Sequential composition ``p·q`` (use :func:`bpa_seq` to build)."""

    left: BPAProcess
    right: BPAProcess


@dataclass(frozen=True, slots=True)
class BPAChoice(BPAProcess):
    """Nondeterministic choice ``p + q``."""

    left: BPAProcess
    right: BPAProcess


@dataclass(frozen=True, slots=True)
class BPAVar(BPAProcess):
    """A process variable ``X``, bound in a :class:`BPASystem`."""

    name: str


def bpa_seq(left: BPAProcess, right: BPAProcess) -> BPAProcess:
    """``p·q`` normalising the unit: ``0·q ≡ q`` and ``p·0 ≡ p``."""
    if isinstance(left, BPAZero):
        return right
    if isinstance(right, BPAZero):
        return left
    return BPASeq(left, right)


def bpa_choice(*parts: BPAProcess) -> BPAProcess:
    """The n-ary choice ``p1 + … + pn`` (``0`` for the empty family)."""
    if not parts:
        return ZERO
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = BPAChoice(part, result)
    return result


def _render(process: BPAProcess) -> str:
    if isinstance(process, BPAZero):
        return "0"
    if isinstance(process, BPAAction):
        return str(process.label)
    if isinstance(process, BPAVar):
        return process.name
    if isinstance(process, BPASeq):
        return f"{_render(process.left)}·{_render(process.right)}"
    if isinstance(process, BPAChoice):
        return f"({_render(process.left)} + {_render(process.right)})"
    raise TypeError(f"unknown BPA term {process!r}")


@dataclass(frozen=True)
class BPASystem:
    """A root process with its recursive definitions ``Δ = {X ≜ p}``."""

    root: BPAProcess
    definitions: tuple[tuple[str, BPAProcess], ...] = ()

    def definition_of(self, name: str) -> BPAProcess:
        for var, body in self.definitions:
            if var == name:
                return body
        raise WellFormednessError(f"undefined BPA variable {name!r}")

    def step(self, process: BPAProcess,
             _depth: int = 0) -> Iterator[tuple[object, BPAProcess]]:
        """The transitions ``p --a--> p'`` of *process* under Δ."""
        if _depth > 64:
            raise WellFormednessError(
                "unguarded BPA recursion (too many variable expansions "
                "while computing one step)")
        if isinstance(process, BPAZero):
            return
        if isinstance(process, BPAAction):
            yield process.label, ZERO
            return
        if isinstance(process, BPAVar):
            yield from self.step(self.definition_of(process.name),
                                 _depth + 1)
            return
        if isinstance(process, BPAChoice):
            yield from self.step(process.left, _depth)
            yield from self.step(process.right, _depth)
            return
        if isinstance(process, BPASeq):
            for label, successor in self.step(process.left, _depth):
                yield label, bpa_seq(successor, process.right)
            return
        raise TypeError(f"unknown BPA term {process!r}")

    def lts(self, max_states: int = 200_000) -> LTS[BPAProcess, object]:
        """The reachable transition system of the root process."""
        return build_lts(self.root, self.step, max_states=max_states)


def substitute_definitions(process: BPAProcess,
                           mapping: Mapping[str, BPAProcess]) -> BPAProcess:
    """Replace free variables by processes (used by tests to unfold)."""
    if isinstance(process, BPAVar):
        return mapping.get(process.name, process)
    if isinstance(process, BPASeq):
        return bpa_seq(substitute_definitions(process.left, mapping),
                       substitute_definitions(process.right, mapping))
    if isinstance(process, BPAChoice):
        return BPAChoice(substitute_definitions(process.left, mapping),
                         substitute_definitions(process.right, mapping))
    return process

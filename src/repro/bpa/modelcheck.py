"""Validity model checking of stand-alone history expressions via BPA.

The pipeline of Section 3.1:

1. :func:`~repro.bpa.regularize.regularize` the expression so that no
   policy is ever framed twice at once (activation counts become
   booleans);
2. translate to BPA (:func:`~repro.bpa.translate.to_bpa`) and build its
   finite transition system;
3. run the product with one *framed automaton* per policy: the policy's
   usage automaton extended with an in-framing flag — it always consumes
   events (validity is history dependent) but only *flags* a violation
   while the framing is open.

The product is a plain finite-state safety check; a violation state is
reachable iff some history of the expression is invalid.  The test suite
cross-validates this checker against the declarative
:func:`repro.core.validity.is_valid` on enumerated traces and against the
network-level checker of :mod:`repro.analysis.security`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.errors import StateSpaceLimitError
from repro.core.syntax import HistoryExpression, policies_of
from repro.policies.usage_automata import Policy, PolicyRunner
from repro.bpa.regularize import regularize
from repro.bpa.translate import to_bpa

#: Default bound on product states.
DEFAULT_PRODUCT_LIMIT = 500_000


class FramedAutomaton:
    """The framed variant ``φ[]`` of a policy automaton.

    Wraps a :class:`~repro.policies.usage_automata.PolicyRunner` with an
    *active* flag: events always advance the runner, but only an active,
    violating runner makes the product state bad.  After regularisation
    the flag is a boolean (no double activation).
    """

    __slots__ = ("policy",)

    def __init__(self, policy: Policy) -> None:
        self.policy = policy

    def initial(self) -> tuple:
        """The initial framed state (fresh runner, framing closed)."""
        return (PolicyRunner(self.policy).freeze(), False)

    def advance(self, state: tuple, label: object) -> tuple[tuple, bool]:
        """One step; returns ``(new_state, bad)``."""
        frozen, active = state
        if isinstance(label, Event):
            runner = PolicyRunner.from_frozen(self.policy, frozen)
            runner.step(label)
            new_state = (runner.freeze(), active)
            return new_state, active and runner.in_violation
        if isinstance(label, FrameOpen) and label.policy == self.policy:
            return (frozen, True), frozen.violated
        if isinstance(label, FrameClose) and label.policy == self.policy:
            return (frozen, False), False
        return state, False


@dataclass(frozen=True)
class BPAValidityReport:
    """Outcome of the BPA validity check."""

    valid: bool
    states_checked: int
    counterexample: tuple | None = None
    violated_policy: Policy | None = None

    def __bool__(self) -> bool:
        return self.valid


def check_validity_bpa(term: HistoryExpression,
                       max_states: int = DEFAULT_PRODUCT_LIMIT
                       ) -> BPAValidityReport:
    """Decide whether every history of *term* is valid.

    Communications and session actions in the BPA traces are skipped by
    the framed automata (they are not history labels); only events and
    framings matter.
    """
    regular = regularize(term)
    system = to_bpa(regular)
    lts = system.lts(max_states=max_states)
    automata = [FramedAutomaton(policy) for policy in
                sorted(policies_of(regular), key=str)]

    initial = (lts.initial,
               tuple(automaton.initial() for automaton in automata))
    seen = {initial}
    frontier = deque([(initial, ())])
    states_checked = 0

    while frontier:
        (process, framed_states), path = frontier.popleft()
        states_checked += 1
        for label, successor in lts.moves(process):
            new_framed = []
            bad_policy: Policy | None = None
            for automaton, state in zip(automata, framed_states):
                new_state, bad = automaton.advance(state, label)
                new_framed.append(new_state)
                if bad and bad_policy is None:
                    bad_policy = automaton.policy
            new_path = path + (label,)
            if bad_policy is not None:
                return BPAValidityReport(False, states_checked,
                                         counterexample=new_path,
                                         violated_policy=bad_policy)
            next_state = (successor, tuple(new_framed))
            if next_state not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states, "BPA product")
                seen.add(next_state)
                frontier.append((next_state, new_path))
    return BPAValidityReport(True, states_checked)

"""Translation of history expressions into BPA (Section 3.1; ref. [4]).

The translation is label-preserving: the transition system of ``to_bpa(H)``
is strongly bisimilar to the transition system of ``H`` under the
stand-alone semantics (the test suite checks this with partition
refinement).  Recursion ``μh.H`` becomes a process definition
``X_h ≜ T(H)``; framings and session open/close become atomic actions, so
the BPA traces are exactly the label sequences of ``H``.
"""

from __future__ import annotations

from repro.core.actions import (FrameClose, FrameOpen, SessionClose,
                                SessionOpen)
from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var)
from repro.bpa.process import (BPAAction, BPAProcess, BPASystem, BPAVar,
                               ZERO, bpa_choice, bpa_seq)


def to_bpa(term: HistoryExpression) -> BPASystem:
    """Render *term* as a BPA system."""
    definitions: list[tuple[str, BPAProcess]] = []
    used_names: set[str] = set()
    root = _translate(term, definitions, used_names)
    return BPASystem(root, tuple(definitions))


def _translate(term: HistoryExpression,
               definitions: list[tuple[str, BPAProcess]],
               used_names: set[str]) -> BPAProcess:
    if isinstance(term, Epsilon):
        return ZERO
    if isinstance(term, Var):
        return BPAVar(term.name)
    if isinstance(term, EventNode):
        return BPAAction(term.event)
    if isinstance(term, Seq):
        return bpa_seq(_translate(term.first, definitions, used_names),
                       _translate(term.second, definitions, used_names))
    if isinstance(term, ExternalChoice):
        return bpa_choice(*(
            bpa_seq(BPAAction(label),
                    _translate(cont, definitions, used_names))
            for label, cont in term.branches))
    if isinstance(term, InternalChoice):
        return bpa_choice(*(
            bpa_seq(BPAAction(label),
                    _translate(cont, definitions, used_names))
            for label, cont in term.branches))
    if isinstance(term, Request):
        body = _translate(term.body, definitions, used_names)
        return bpa_seq(
            BPAAction(SessionOpen(term.request, term.policy)),
            bpa_seq(body,
                    BPAAction(SessionClose(term.request, term.policy))))
    if isinstance(term, ClosePending):
        return BPAAction(SessionClose(term.request, term.policy))
    if isinstance(term, Framing):
        body = _translate(term.body, definitions, used_names)
        return bpa_seq(BPAAction(FrameOpen(term.policy)),
                       bpa_seq(body, BPAAction(FrameClose(term.policy))))
    if isinstance(term, FrameClosePending):
        return BPAAction(FrameClose(term.policy))
    if isinstance(term, Mu):
        name = _fresh(f"X_{term.var}", used_names)
        used_names.add(name)
        body = _translate(
            _rename_var(term.body, term.var, name), definitions, used_names)
        definitions.append((name, body))
        return BPAVar(name)
    raise TypeError(f"unknown history expression node {term!r}")


def _fresh(base: str, used: set[str]) -> str:
    candidate = base
    counter = 0
    while candidate in used:
        counter += 1
        candidate = f"{base}_{counter}"
    return candidate


def _rename_var(term: HistoryExpression, old: str,
                new: str) -> HistoryExpression:
    """Rename the free recursion variable *old* to *new* (BPA definition
    names live in their own namespace, so freshness is enough)."""
    from repro.core.syntax import substitute
    return substitute(term, old, Var(new))

"""Basic Process Algebra substrate (Section 3.1; refs [4, 5]).

History expressions are rendered as BPA processes; the regularisation
transform removes the context-free aspects introduced by nested policy
framings, after which validity is model-checkable with finite-state
framed automata.
"""

from repro.bpa.modelcheck import check_validity_bpa
from repro.bpa.process import BPAProcess, BPASystem
from repro.bpa.regularize import regularize
from repro.bpa.translate import to_bpa

__all__ = ["check_validity_bpa", "BPAProcess", "BPASystem", "regularize",
           "to_bpa"]

"""Framing regularisation (Section 3.1; refs [4, 5]).

"Because of the possible nesting of security framings, validity of
history expressions is a non-regular property … a semantic-preserving
transformation is presented, that removes the context-free aspects due to
policy nesting: it suffices recording the opening of policies, and
removing those already opened and their corresponding closures, in a
stack-like fashion."

:func:`regularize` rewrites a history expression so that no framing for a
policy ``φ`` ever occurs inside another framing of the *same* ``φ``:
``φ[H·φ[H']·H''] ⇒ φ[H·H'·H'']``.  This preserves validity — whether
``φ ∈ AP(η0)`` for a prefix ``η0`` only depends on the activation count
being positive, and the transformation never changes positivity — and
bounds each policy's activation at 1, so validity becomes checkable by a
finite product with the *framed* automata of
:mod:`repro.bpa.modelcheck`.
"""

from __future__ import annotations

from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var, seq)


def regularize(term: HistoryExpression,
               active: frozenset = frozenset()) -> HistoryExpression:
    """Remove redundant nested framings of already-active policies.

    *active* is the set of policies whose framing is open around *term*
    (callers normally leave it empty).
    """
    if isinstance(term, (Epsilon, Var, EventNode, ClosePending,
                         FrameClosePending)):
        return term
    if isinstance(term, Seq):
        return seq(regularize(term.first, active),
                   regularize(term.second, active))
    if isinstance(term, ExternalChoice):
        return ExternalChoice(tuple(
            (label, regularize(cont, active))
            for label, cont in term.branches))
    if isinstance(term, InternalChoice):
        return InternalChoice(tuple(
            (label, regularize(cont, active))
            for label, cont in term.branches))
    if isinstance(term, Request):
        # The policy of a request frames the *session*, not this term's
        # own history; nested framings inside the body are handled
        # independently.
        return Request(term.request, term.policy,
                       regularize(term.body, active))
    if isinstance(term, Framing):
        if term.policy in active:
            return regularize(term.body, active)
        return Framing(term.policy,
                       regularize(term.body, active | {term.policy}))
    if isinstance(term, Mu):
        # Tail recursion cannot carry an open framing across iterations
        # (a framed body would put the variable in non-tail position), so
        # the active set distributes unchanged.
        return Mu(term.var, regularize(term.body, active))
    raise TypeError(f"unknown history expression node {term!r}")


def max_framing_depth(term: HistoryExpression) -> int:
    """The maximal syntactic nesting depth of *same-policy* framings.

    After :func:`regularize` this is at most 1 for every policy; exposed
    for the tests that check exactly that.
    """

    def depth(node: HistoryExpression, active: tuple) -> int:
        if isinstance(node, Framing):
            count = active.count(node.policy) + 1
            inner = depth(node.body, active + (node.policy,))
            return max(count, inner)
        best = 0
        for child in node.children():
            best = max(best, depth(child, active))
        return best

    return depth(term, ())

"""Quantitative policies compiled to usage automata.

A *budget policy* bounds the cost a session may accumulate: with integer
per-event costs and a finite budget, the accumulator is a bounded
counter, so the policy is a plain regular property — we compile it to an
ordinary :class:`~repro.policies.usage_automata.UsageAutomaton` whose
states are the spent amounts (``spent_0 … spent_B`` plus the offending
overrun sink).

Because the result is a standard :class:`Policy`, **every** existing
mechanism enforces it unchanged: ``frame budget { … }`` framings, the
run-time monitor, the angelic network semantics, the session-product
security model checker and the BPA pipeline.  This is exactly the
"quantitative information in the security policies" extension the paper
sketches as future work (ref. [14]).
"""

from __future__ import annotations

from typing import Mapping

from repro.policies.builder import AutomatonBuilder
from repro.policies.usage_automata import Policy, UsageAutomaton
from repro.quantitative.costs import CostModel


def budget_automaton(name: str, weights: Mapping[str, int],
                     budget: int) -> UsageAutomaton:
    """The counting automaton for "spend at most *budget*".

    *weights* gives the integer cost of each charged event name;
    uncharged events are free (the implicit self-loops).  Zero-cost
    entries are allowed and simply ignored.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    weight_map = dict(weights)  # accepts mappings, pair-iterables and {}
    charged = {event: int(cost) for event, cost in weight_map.items()
               if cost != 0}
    for event, cost in charged.items():
        if cost < 0:
            raise ValueError(f"cost of {event!r} is negative")

    builder = AutomatonBuilder(name)
    builder.state("spent_0", initial=True)
    builder.state("overrun", offending=True)
    for spent in range(budget + 1):
        for event, cost in charged.items():
            total = spent + cost
            target = f"spent_{total}" if total <= budget else "overrun"
            builder.edge(f"spent_{spent}", target, event)
    return builder.build()


def budget_policy(name: str, weights: Mapping[str, int],
                  budget: int) -> Policy:
    """An enforceable budget policy (an instantiated automaton)."""
    return budget_automaton(name, weights, budget).instantiate()


def cost_model_policy(name: str, model: CostModel, budget: int) -> Policy:
    """Budget policy from a :class:`CostModel` (explicit weights only;
    the model's default must be 0 — a non-zero default would charge
    every event name, which a finite automaton alphabet cannot
    enumerate)."""
    if model.default != 0:
        raise ValueError("cost_model_policy requires a zero default cost")
    weights = {event: int(cost) for event, cost in model.weights}
    for (event, original), rounded in zip(model.weights, weights.values()):
        if original != rounded:
            raise ValueError(
                f"cost of {event!r} is not an integer ({original})")
    return budget_policy(name, weights, budget)

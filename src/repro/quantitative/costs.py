"""Cost models over access events.

Section 5 of the paper names, as a major line of future work, "extending
our verification methodology to include quantitative information in the
security policies, along the lines of [14]" (Degano–Ferrari–Mezzetti,
*On quantitative security policies*), where activities carry rates.
This package realises that extension on top of the unmodified core:

* a :class:`CostModel` assigns a non-negative cost (rate, latency,
  monetary price, energy …) to each access event;
* histories, traces and whole behaviours (LTSs) can be priced —
  :func:`history_cost`, :func:`worst_case_cost`;
* quantitative *policies* (budgets over accumulated cost) are compiled
  into ordinary usage automata (:mod:`repro.quantitative.policies`), so
  every existing checker — the monitor, the session-product model
  checker, the BPA pipeline — enforces them without modification;
* the planner gains a cost-aware ranking
  (:mod:`repro.quantitative.planning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.actions import Event
from repro.core.validity import History
from repro.contracts.lts import LTS

#: Sentinel returned by :func:`worst_case_cost` for diverging behaviours.
UNBOUNDED = float("inf")


@dataclass(frozen=True)
class CostModel:
    """Per-event-name costs, with an optional default for unlisted names.

    Costs must be non-negative (they model consumption of a resource).
    The model is immutable and hashable, so it can parameterise cached
    analyses.
    """

    weights: tuple[tuple[str, float], ...] = ()
    default: float = 0.0

    @staticmethod
    def of(weights: Mapping[str, float],
           default: float = 0.0) -> "CostModel":
        """Build from a mapping; validates non-negativity."""
        items = tuple(sorted(weights.items()))
        for name, weight in items:
            if weight < 0:
                raise ValueError(
                    f"cost of {name!r} is negative ({weight})")
        if default < 0:
            raise ValueError(f"default cost is negative ({default})")
        return CostModel(items, default)

    def cost_of(self, event: Event) -> float:
        """The cost of one event."""
        for name, weight in self.weights:
            if name == event.name:
                return weight
        return self.default

    def names(self) -> frozenset[str]:
        """Event names with an explicit cost."""
        return frozenset(name for name, _ in self.weights)


def trace_cost(model: CostModel, trace: Iterable[Event]) -> float:
    """Total cost of a sequence of events."""
    return sum(model.cost_of(event) for event in trace)


def history_cost(model: CostModel, history: History) -> float:
    """Total cost of the events of a history (framings are free)."""
    return trace_cost(model, history.flatten())


def worst_case_cost(model: CostModel, lts: LTS) -> float:
    """The supremum of trace costs over all runs of *lts*.

    Labels are inspected for embedded events: plain
    :class:`~repro.core.actions.Event` labels and the ``appends`` of
    session-product labels both count.  Behaviours that can repeat a
    positive-cost cycle price at :data:`UNBOUNDED`; zero-cost cycles are
    fine (longest-path over the cost-relevant DAG).

    The computation is a Bellman-Ford-style relaxation with cycle
    detection, linear in states × transitions × states.
    """
    states = list(lts.states)
    index = {state: i for i, state in enumerate(states)}
    best = [float("-inf")] * len(states)
    best[index[lts.initial]] = 0.0

    edges = []
    for state in states:
        for label, target in lts.transitions[state]:
            edges.append((index[state], index[target],
                          _label_cost(model, label)))

    for _ in range(len(states)):
        changed = False
        for source, target, weight in edges:
            if best[source] == float("-inf"):
                continue
            candidate = best[source] + weight
            if candidate > best[target] + 1e-12:
                best[target] = candidate
                changed = True
        if not changed:
            break
    else:
        # Without positive-cost cycles, longest paths are simple and the
        # relaxation converges within |V| rounds; any edge still
        # relaxable therefore witnesses a reachable positive cycle.
        for source, target, weight in edges:
            if best[source] > float("-inf") \
                    and best[source] + weight > best[target] + 1e-12:
                return UNBOUNDED

    finite = [value for value in best if value > float("-inf")]
    return max(finite) if finite else 0.0


def _label_cost(model: CostModel, label: object) -> float:
    if isinstance(label, Event):
        return model.cost_of(label)
    appends = getattr(label, "appends", None)
    if appends:
        return sum(model.cost_of(item) for item in appends
                   if isinstance(item, Event))
    return 0.0

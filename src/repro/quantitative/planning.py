"""Cost-aware plan synthesis.

Valid plans are not all equal: routing a request to one service or
another changes the events fired during the session, hence its cost
under a :class:`~repro.quantitative.costs.CostModel`.  This module
prices candidate plans by the **worst-case** total event cost of the
assembled behaviour (the session product already enumerates every run)
and ranks the planner's valid plans by it.

``cheapest_valid_plan`` is the quantitative counterpart of Section 5's
procedure: among the orchestrations that are secure and unfailing, pick
the one with the best price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.planner import PlanAnalysis, find_valid_plans
from repro.analysis.session_product import assemble
from repro.core.plans import Plan
from repro.core.syntax import HistoryExpression
from repro.network.repository import Repository
from repro.quantitative.costs import UNBOUNDED, CostModel, worst_case_cost


@dataclass(frozen=True)
class PricedPlan:
    """A statically valid plan together with its worst-case cost."""

    analysis: PlanAnalysis
    cost: float

    @property
    def plan(self) -> Plan:
        return self.analysis.plan

    def __str__(self) -> str:
        price = "unbounded" if self.cost == UNBOUNDED else f"{self.cost:g}"
        return f"{self.plan} @ {price}"


def plan_cost(client: HistoryExpression, plan: Plan,
              repository: Repository, model: CostModel,
              location: str = "client") -> float:
    """Worst-case total event cost of running *client* under *plan*."""
    lts = assemble(client, plan, repository, location)
    return worst_case_cost(model, lts)


def priced_valid_plans(client: HistoryExpression, repository: Repository,
                       model: CostModel, location: str = "client",
                       max_plans: int | None = None
                       ) -> tuple[PricedPlan, ...]:
    """All valid plans for *client*, priced and sorted cheapest-first.

    Ties are broken by the plan's string form, keeping the order
    deterministic."""
    result = find_valid_plans(client, repository, location=location,
                              max_plans=max_plans)
    priced = [PricedPlan(analysis,
                         plan_cost(client, analysis.plan, repository,
                                   model, location))
              for analysis in result.valid_plans]
    priced.sort(key=lambda entry: (entry.cost, str(entry.plan)))
    return tuple(priced)


def cheapest_valid_plan(client: HistoryExpression,
                        repository: Repository, model: CostModel,
                        location: str = "client",
                        max_plans: int | None = None) -> PricedPlan | None:
    """The cheapest valid plan, or ``None`` when no plan is valid."""
    priced = priced_valid_plans(client, repository, model,
                                location=location, max_plans=max_plans)
    return priced[0] if priced else None

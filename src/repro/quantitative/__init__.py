"""Quantitative extension: costs, budget policies, cost-aware planning.

Realises the future work the paper sketches in Section 5 ("include
quantitative information in the security policies, along the lines of
[14]"): per-event cost models, budget policies compiled to ordinary
usage automata, and worst-case pricing/ranking of valid plans.
"""

from repro.quantitative.costs import (CostModel, UNBOUNDED, history_cost,
                                      trace_cost, worst_case_cost)
from repro.quantitative.planning import (PricedPlan, cheapest_valid_plan,
                                         plan_cost, priced_valid_plans)
from repro.quantitative.policies import (budget_automaton, budget_policy,
                                         cost_model_policy)

__all__ = ["CostModel", "UNBOUNDED", "history_cost", "trace_cost",
           "worst_case_cost", "PricedPlan", "cheapest_valid_plan",
           "plan_cost", "priced_valid_plans", "budget_automaton",
           "budget_policy", "cost_model_policy"]
